"""Failure handling: retries, timeouts, broken-pool recovery, fault harness.

Every test drives the engine through the public ``REPRO_FAULT`` harness (or
a monkeypatched ``_execute``) rather than reaching into pool internals, so
the scenarios here are exactly the ones an operator can reproduce from the
shell.  ``REPRO_RETRY_BACKOFF=0`` keeps the retry paths fast.
"""

import json
import time

import pytest

from repro.common import faults
from repro.sim import checkpoint as ckpt
from repro.sim import engine
from repro.sim.engine import BatchStats, run_batch, spec_for
from repro.sim.presets import baseline_config
from repro.workloads import store as program_store

FAST = baseline_config(max_instructions=2_000).replace(
    functional_warmup_blocks=800
)


@pytest.fixture(autouse=True)
def _failure_env(monkeypatch, tmp_path):
    monkeypatch.setenv(engine.JOBS_ENV, "2")
    monkeypatch.setenv(engine.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.setenv(faults.FAULT_DIR_ENV, str(tmp_path / "faults"))
    monkeypatch.setenv(engine.RETRY_BACKOFF_ENV, "0")
    for env in (
        engine.NO_CACHE_ENV,
        engine.RETRIES_ENV,
        engine.UNIT_TIMEOUT_ENV,
        engine.FAILURE_POLICY_ENV,
        engine.TIMEOUT_GRACE_ENV,
        faults.FAULT_ENV,
        faults.HANG_SECONDS_ENV,
        "REPRO_NO_CHECKPOINT",
    ):
        monkeypatch.delenv(env, raising=False)


def _specs(labels, seed_base=1):
    # Distinct seeds give distinct warmup-checkpoint keys, so the pool runs
    # the units genuinely in parallel instead of leader/follower chained.
    return [
        spec_for("mediawiki", FAST, seed_base + i, label)
        for i, label in enumerate(labels)
    ]


def _serialized(results):
    return [json.dumps(r.to_dict(), sort_keys=True) for r in results]


# ---------------------------------------------------------------------------
# Knob resolution and fault-spec parsing
# ---------------------------------------------------------------------------


def test_resolver_validation(monkeypatch):
    assert engine.resolve_retries() == 1
    assert engine.resolve_retries(0) == 0
    monkeypatch.setenv(engine.RETRIES_ENV, "3")
    assert engine.resolve_retries() == 3
    with pytest.raises(ValueError, match="retries argument"):
        engine.resolve_retries(-1)
    monkeypatch.setenv(engine.RETRIES_ENV, "nope")
    with pytest.raises(ValueError, match=engine.RETRIES_ENV):
        engine.resolve_retries()

    assert engine.resolve_unit_timeout() is None
    assert engine.resolve_unit_timeout(2.5) == 2.5
    monkeypatch.setenv(engine.UNIT_TIMEOUT_ENV, "7")
    assert engine.resolve_unit_timeout() == 7.0
    with pytest.raises(ValueError, match="must be > 0"):
        engine.resolve_unit_timeout(0)
    monkeypatch.setenv(engine.UNIT_TIMEOUT_ENV, "soon")
    with pytest.raises(ValueError, match=engine.UNIT_TIMEOUT_ENV):
        engine.resolve_unit_timeout()

    assert engine.resolve_failure_policy() == "raise"
    monkeypatch.setenv(engine.FAILURE_POLICY_ENV, "keep-going")
    assert engine.resolve_failure_policy() == "keep-going"
    with pytest.raises(ValueError, match="unknown failure policy"):
        engine.resolve_failure_policy("shrug")


def test_fault_parsing_rejects_malformed(monkeypatch):
    assert faults.parse_faults("") == []
    parsed = faults.parse_faults("kill:udp, raise:flaky:2")
    assert [(d.kind, d.token, d.limit) for d in parsed] == [
        ("kill", "udp", None),
        ("raise", "flaky", 2),
    ]
    for bad in ("explode:udp", "kill", "kill:udp:often", "kill:udp:0", "kill:a:1:2"):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_faults(bad)


def test_fault_budget_is_claimed_atomically(monkeypatch, tmp_path):
    monkeypatch.setenv(faults.FAULT_DIR_ENV, str(tmp_path / "budget"))
    directive = faults.parse_faults("raise:flaky:2")[0]
    assert faults._claim(directive)
    assert faults._claim(directive)
    assert not faults._claim(directive)  # budget of 2 exhausted
    unlimited = faults.parse_faults("raise:flaky")[0]
    assert all(faults._claim(unlimited) for _ in range(5))


# ---------------------------------------------------------------------------
# Worker exceptions: aggregation, policies, retries
# ---------------------------------------------------------------------------


def test_batch_error_aggregates_every_failure(monkeypatch):
    monkeypatch.setenv(faults.FAULT_ENV, "raise:bad-a,raise:bad-b")
    specs = _specs(["bad-a", "ok", "bad-b"])
    stats = BatchStats()
    with pytest.raises(engine.BatchError) as info:
        run_batch(specs, no_cache=True, progress=stats, retries=0)
    exc = info.value
    assert "2 of 3 specs failed (1 completed)" in str(exc)
    assert "1 more failure attached" in str(exc)
    assert [f.label for f in exc.failures] == ["bad-a", "bad-b"]
    assert all(f.kind == "error" for f in exc.failures)
    assert [r is not None for r in exc.results] == [False, True, False]
    assert stats.failed == 2 and len(stats.failures) == 2
    assert "2 FAILED (error)" in stats.summary()


def test_keep_going_returns_none_for_failed_specs(monkeypatch):
    monkeypatch.setenv(faults.FAULT_ENV, "raise:bad")
    specs = _specs(["ok-1", "bad", "ok-2"])
    results = run_batch(
        specs, no_cache=True, retries=0, on_failure="keep-going"
    )
    assert [r is not None for r in results] == [True, False, True]


def test_fail_fast_aborts_the_batch(monkeypatch):
    monkeypatch.setenv(faults.FAULT_ENV, "raise:bad")
    specs = _specs(["bad", "ok-1", "ok-2"])
    stats = BatchStats()
    with pytest.raises(engine.BatchError) as info:
        run_batch(
            specs,
            jobs=1,  # deterministic order: the failing spec runs first
            no_cache=True,
            retries=0,
            on_failure="fail-fast",
            progress=stats,
        )
    assert info.value.completed == 0  # nothing after the failure ran
    assert stats.simulated == 0


def test_retry_then_succeed_matches_clean_run(monkeypatch, tmp_path):
    # A unit that fails once and succeeds on retry must leave no trace in
    # the counters: serial and pooled retried runs are byte-identical to a
    # clean serial run.  (REPRO_RETRIES>0 identity — acceptance criterion.)
    specs = _specs(["flaky", "steady"])
    clean = run_batch(specs, jobs=1, no_cache=True)

    monkeypatch.setenv(faults.FAULT_ENV, "raise:flaky:1")
    monkeypatch.setenv(faults.FAULT_DIR_ENV, str(tmp_path / "serial"))
    serial_stats = BatchStats()
    serial = run_batch(
        specs, jobs=1, no_cache=True, retries=1, progress=serial_stats
    )
    assert serial_stats.retried == 1 and serial_stats.failed == 0
    retried_events = [e for e in serial_stats.failures]
    assert retried_events == []

    monkeypatch.setenv(faults.FAULT_DIR_ENV, str(tmp_path / "pooled"))
    pooled_stats = BatchStats()
    pooled = run_batch(
        specs, jobs=2, no_cache=True, retries=1, progress=pooled_stats
    )
    assert pooled_stats.retried == 1 and pooled_stats.failed == 0

    assert _serialized(serial) == _serialized(clean)
    assert _serialized(pooled) == _serialized(clean)


def test_retry_budget_exhaustion_counts_attempts(monkeypatch):
    monkeypatch.setenv(faults.FAULT_ENV, "raise:doomed")
    specs = _specs(["doomed"])
    with pytest.raises(engine.BatchError) as info:
        run_batch(specs, jobs=1, no_cache=True, retries=2)
    failure = info.value.failures[0]
    assert failure.attempts == 3  # initial try + 2 retries
    assert failure.kind == "error"
    assert "injected fault" in failure.message


# ---------------------------------------------------------------------------
# Broken-pool recovery (the PR-motivating bug)
# ---------------------------------------------------------------------------


def test_worker_death_fails_one_spec_not_the_batch(monkeypatch):
    # A worker dying breaks the entire ProcessPoolExecutor.  The engine
    # must rebuild it, attribute the crash to the culprit unit only, and
    # finish every other spec.
    monkeypatch.setenv(faults.FAULT_ENV, "kill:dead")
    specs = _specs(["dead", "inno-a", "inno-b", "inno-c"])
    stats = BatchStats()
    with pytest.raises(engine.BatchError) as info:
        run_batch(specs, jobs=2, no_cache=True, retries=0, progress=stats)
    exc = info.value
    assert [f.label for f in exc.failures] == ["dead"]
    assert exc.failures[0].kind == "crash"
    assert "worker process died" in exc.failures[0].message
    assert exc.completed == 3
    assert [r is not None for r in exc.results] == [False, True, True, True]
    assert stats.failed == 1 and "crash" in stats.summary()


def test_worker_death_retry_recovers_byte_identical(monkeypatch, tmp_path):
    # Killed exactly once: the re-run must succeed and the batch match a
    # clean serial run bit-for-bit (acceptance criterion).
    specs = _specs(["dead", "steady"])
    clean = run_batch(specs, jobs=1, no_cache=True)
    monkeypatch.setenv(faults.FAULT_ENV, "kill:dead:1")
    monkeypatch.setenv(faults.FAULT_DIR_ENV, str(tmp_path / "kill-once"))
    stats = BatchStats()
    recovered = run_batch(
        specs, jobs=2, no_cache=True, retries=1, progress=stats
    )
    assert stats.failed == 0
    assert _serialized(recovered) == _serialized(clean)


def test_crash_with_parked_followers_releases_them(monkeypatch):
    # All three specs share one warmup key (same seed): the leader claims
    # it and its worker dies before the checkpoint lands.  The parked
    # followers must be released to create the state themselves.
    monkeypatch.setenv(faults.FAULT_ENV, "kill:leader")
    specs = [
        spec_for("mediawiki", FAST.with_ftq_depth(16), 1, "leader"),
        spec_for("mediawiki", FAST.with_ftq_depth(32), 1, "f-32"),
        spec_for("mediawiki", FAST.with_ftq_depth(16), 1, "f-16"),
    ]
    with pytest.raises(engine.BatchError) as info:
        run_batch(specs, jobs=2, no_cache=True, retries=0)
    exc = info.value
    assert [f.label for f in exc.failures] == ["leader"]
    assert exc.failures[0].kind == "crash"
    assert exc.completed == 2


# ---------------------------------------------------------------------------
# Timeouts: in-worker SIGALRM and the parent-side backstop
# ---------------------------------------------------------------------------


def _slow_execute(spec):
    if spec.label == "slow":
        time.sleep(30)
    return _REAL_EXECUTE(spec)


_REAL_EXECUTE = engine._execute


def test_unit_timeout_serial_keep_going(monkeypatch):
    monkeypatch.setattr(engine, "_execute", _slow_execute)
    specs = _specs(["ok", "slow"])
    stats = BatchStats()
    results = run_batch(
        specs,
        jobs=1,
        no_cache=True,
        retries=0,
        unit_timeout=0.2,
        on_failure="keep-going",
        progress=stats,
    )
    assert results[0] is not None and results[1] is None
    assert stats.failures[0].failure_kind == "timeout"
    assert "0.2s wall-clock" in stats.failures[0].error


def test_unit_timeout_interrupts_hung_worker(monkeypatch):
    # The hang fault sleeps "forever" inside the worker; the in-worker
    # SIGALRM must cut it short and report a timeout failure while the
    # other spec completes normally.
    monkeypatch.setenv(faults.FAULT_ENV, "hang:stuck")
    monkeypatch.setenv(faults.HANG_SECONDS_ENV, "30")
    specs = _specs(["stuck", "fine"])
    stats = BatchStats()
    results = run_batch(
        specs,
        jobs=2,
        no_cache=True,
        retries=0,
        unit_timeout=0.3,
        on_failure="keep-going",
        progress=stats,
    )
    assert results[0] is None and results[1] is not None
    assert stats.failures[0].failure_kind == "timeout"


def test_hard_hang_hits_parent_backstop(monkeypatch):
    # hang-hard blocks SIGALRM, emulating a worker stuck in uninterruptible
    # code.  Only the parent-side backstop (terminate at 2x timeout +
    # grace, then rebuild the pool) can clear it.  retries=1 keeps the test
    # robust on a loaded box: if the innocent spec is still running when
    # the backstop sweeps, it is re-run and succeeds, while the truly hung
    # unit hangs again and exhausts the budget.
    monkeypatch.setenv(faults.FAULT_ENV, "hang-hard:stuck")
    monkeypatch.setenv(faults.HANG_SECONDS_ENV, "30")
    monkeypatch.setenv(engine.TIMEOUT_GRACE_ENV, "0.5")
    specs = _specs(["stuck", "fine"])
    stats = BatchStats()
    results = run_batch(
        specs,
        jobs=2,
        no_cache=True,
        retries=1,
        unit_timeout=0.3,
        on_failure="keep-going",
        progress=stats,
    )
    assert results[0] is None and results[1] is not None
    assert [f.spec.label for f in stats.failures] == ["stuck"]
    assert stats.failures[0].failure_kind == "timeout"
    assert "unresponsive" in stats.failures[0].error


# ---------------------------------------------------------------------------
# Sampled specs: per-interval failure attribution
# ---------------------------------------------------------------------------


def test_sampled_interval_failure_names_the_interval(monkeypatch):
    monkeypatch.setenv(faults.FAULT_ENV, "raise:samp#1")
    sampled = FAST.replace(warmup_instructions=0).with_sampling(2, 100)
    specs = [
        spec_for("mediawiki", sampled, 1, "samp"),
        spec_for("mediawiki", FAST, 2, "plain"),
    ]
    with pytest.raises(engine.BatchError) as info:
        run_batch(specs, jobs=2, no_cache=True, retries=0)
    exc = info.value
    assert [f.label for f in exc.failures] == ["samp"]
    assert exc.failures[0].interval == 1
    assert exc.completed == 1 and exc.results[1] is not None


# ---------------------------------------------------------------------------
# Corrupt-artifact fallbacks
# ---------------------------------------------------------------------------


def test_corrupt_checkpoint_read_falls_back_to_rewarm(monkeypatch):
    spec = spec_for("mediawiki", FAST, 1, "ck")
    clean = run_batch([spec], jobs=1, no_cache=True)
    key = engine._checkpoint_key_for(spec)
    assert key is not None and ckpt.CheckpointStore().exists(key)

    ckpt._BLOB_MEMO.clear()
    monkeypatch.setenv(faults.FAULT_ENV, f"corrupt-checkpoint:{key[:12]}:1")
    stats = BatchStats()
    again = run_batch([spec], jobs=1, no_cache=True, progress=stats)
    # The injected-garbage read must be treated as a miss: the warmup is
    # re-created (not restored) and the result is unchanged.
    assert stats.checkpoint_creates == 1 and stats.failed == 0
    assert _serialized(again) == _serialized(clean)


def test_corrupt_program_read_rebuilds(monkeypatch, tmp_path):
    store = program_store.ProgramStore()
    program_store.materialize("mediawiki", 9)
    assert store.load("mediawiki", 9) is not None

    program_store.clear_memo()
    monkeypatch.setenv(faults.FAULT_ENV, "corrupt-program:mediawiki:1")
    # The poisoned read is a miss, so the program is rebuilt from the
    # profile and the store entry rewritten.
    program, source = program_store.get_program("mediawiki", 9)
    assert source == "built" and program is not None
    program_store.clear_memo()
    assert store.load("mediawiki", 9) is not None  # fault budget exhausted
