"""Interval-sampled simulation: planning, equivalence, and determinism.

The load-bearing property is the equivalence oracle: one interval covering
the whole measured region with no detailed warmup must produce counters
byte-identical to a plain full-fidelity run, on every preset family the
benchmark sweeps.  Everything else (pool scheduling, per-interval RNG
seeds, checkpoint reuse, the ``REPRO_NO_SAMPLING`` escape hatch) must never
change a merged result.
"""

import dataclasses
import json

import pytest

from repro.common.config import ConfigError, SamplingConfig
from repro.common.rng import interval_seed
from repro.sim import checkpoint as ckpt
from repro.sim import engine, sampling
from repro.sim.engine import BatchStats, run_batch, spec_for
from repro.sim.metrics import SimResult
from repro.sim.presets import (
    apply_sampling,
    baseline_config,
    miss_heavy_config,
    udp_config,
)

FAST = baseline_config(max_instructions=2_000).replace(
    functional_warmup_blocks=800
)


@pytest.fixture(autouse=True)
def _sampling_env(monkeypatch, tmp_path):
    monkeypatch.setenv(engine.JOBS_ENV, "2")
    monkeypatch.setenv(engine.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.delenv(engine.NO_CACHE_ENV, raising=False)
    monkeypatch.delenv("REPRO_NO_CHECKPOINT", raising=False)
    monkeypatch.delenv(sampling.NO_SAMPLING_ENV, raising=False)


def _identical(a: SimResult, b: SimResult) -> bool:
    return json.dumps(a.counters, sort_keys=True) == json.dumps(
        b.counters, sort_keys=True
    ) and a.avg_ftq_occupancy == b.avg_ftq_occupancy


# ---------------------------------------------------------------------------
# Configuration and planning
# ---------------------------------------------------------------------------


def test_sampling_config_validation():
    SamplingConfig().validate(10_000)  # disabled is always fine
    with pytest.raises(ConfigError):
        SamplingConfig(num_intervals=-1).validate(10_000)
    with pytest.raises(ConfigError):
        SamplingConfig(num_intervals=2).validate(10_000)  # zero length
    with pytest.raises(ConfigError):
        SamplingConfig(2, 4_000, 2_000).validate(10_000)  # exceeds period
    SamplingConfig(2, 4_000, 1_000).validate(10_000)


def test_sampling_rejects_timed_warmup():
    config = FAST.replace(warmup_instructions=200).with_sampling(2, 100)
    with pytest.raises(ConfigError, match="warmup_instructions"):
        config.validate()
    config.replace(warmup_instructions=0).validate()


def test_with_and_without_sampling_round_trip():
    sampled = FAST.with_sampling(4, 100, 50)
    assert sampled.sampling == SamplingConfig(4, 100, 50)
    assert sampled.without_sampling() == FAST
    assert FAST.without_sampling() == FAST  # no-op when already plain


def test_interval_seed_identity_and_determinism():
    assert interval_seed(7, 0) == 7  # K=1 keeps the base seed
    assert interval_seed(7, 3) == interval_seed(7, 3)
    seeds = {interval_seed(7, i) for i in range(16)}
    assert len(seeds) == 16
    assert interval_seed(7, 3) != interval_seed(8, 3)


def test_plan_intervals_anchors_measurement_at_period_end():
    config = baseline_config(max_instructions=20_000).with_sampling(4, 500, 250)
    plans = sampling.plan_intervals(config)
    assert [p.index for p in plans] == [0, 1, 2, 3]
    assert [p.ff_instructions for p in plans] == [4_250, 9_250, 14_250, 19_250]
    assert all(p.measure_instructions == 500 for p in plans)
    assert all(p.detailed_warmup == 250 for p in plans)
    # Warm fast-forwards (the default) share the base seed across intervals:
    # the warming replay and the measured region consume one data stream.
    assert {p.rng_seed for p in plans} == {config.seed}
    cold = sampling.plan_intervals(
        config.replace(
            sampling=dataclasses.replace(config.sampling, warm_fastforward=False)
        )
    )
    assert cold[0].rng_seed == config.seed
    assert len({p.rng_seed for p in cold}) == 4  # decorrelated per interval
    with pytest.raises(ValueError):
        sampling.plan_intervals(baseline_config())


def test_degenerate_plan_fast_forwards_nothing():
    config = FAST.with_sampling(1, FAST.max_instructions, 0)
    (plan,) = sampling.plan_intervals(config)
    assert plan.ff_instructions == 0
    assert plan.measure_instructions == FAST.max_instructions
    assert plan.rng_seed == config.seed


def test_sampling_config_rejected_at_construction():
    # Invalid shapes cannot exist as values at all: __post_init__ raises,
    # so a negative-ff plan can never be built from a constructed config.
    with pytest.raises(ConfigError):
        SamplingConfig(num_intervals=-1)
    with pytest.raises(ConfigError):
        SamplingConfig(num_intervals=2)  # enabled with zero interval_length
    with pytest.raises(ConfigError):
        SamplingConfig(2, 100, -5)
    SamplingConfig()  # the disabled default stays constructible


def test_with_sampling_rejects_shapes_exceeding_the_period():
    # interval_length + detailed_warmup > period used to flow through to
    # plan_intervals and emit negative fast-forward distances; both
    # with_sampling and plan_intervals now refuse, naming the knobs.
    with pytest.raises(ConfigError, match="interval_length"):
        FAST.with_sampling(4, 400, 200)  # period 500 < 400 + 200
    unvalidated = FAST.replace(sampling=SamplingConfig(4, 400, 200))
    with pytest.raises(ConfigError, match="detailed_warmup"):
        sampling.plan_intervals(unvalidated)


def test_plan_intervals_distributes_non_dividing_remainders():
    config = baseline_config(max_instructions=10_000).with_sampling(3, 100, 50)
    plans = sampling.plan_intervals(config)
    # End targets 3333/6666/10000: the remainder spreads across periods and
    # the last interval still ends exactly at max_instructions.
    assert [p.ff_instructions for p in plans] == [3_183, 6_516, 9_850]


@pytest.mark.parametrize(
    "max_instructions,k,length,warmup",
    [
        (10_000, 3, 100, 50),
        (10_000, 7, 33, 0),
        (20_000, 4, 500, 250),
        (99_999, 13, 777, 111),
        (2_000, 1, 2_000, 0),
        (17, 5, 1, 1),
        (101, 100, 1, 0),
    ],
)
def test_plan_invariants_hold_across_shapes(max_instructions, k, length, warmup):
    # The planning invariants: non-negative fast-forwards, strictly
    # increasing interval ends, and full coverage of the measured region.
    config = baseline_config(max_instructions=max_instructions).with_sampling(
        k, length, warmup
    )
    plans = sampling.plan_intervals(config)
    assert len(plans) == k
    assert all(p.ff_instructions >= 0 for p in plans)
    ends = [p.ff_instructions + warmup + length for p in plans]
    assert all(a < b for a, b in zip(ends, ends[1:]))  # strictly increasing
    assert ends[-1] == max_instructions


def test_escalate_sampling_grows_intervals_then_warmup():
    config = baseline_config(max_instructions=20_000).with_sampling(4, 500, 250)
    doubled = sampling.escalate_sampling(config)
    assert doubled.sampling.num_intervals == 8
    assert doubled.sampling.detailed_warmup == 250
    # The ladder stays valid at every rung and terminates: once doubling no
    # longer fits the period, the detailed warmup grows instead, and when
    # neither can move the escalation reports exhaustion with None.
    seen = []
    while config is not None and len(seen) < 50:
        sampling.plan_intervals(config)  # validates each rung
        seen.append((config.sampling.num_intervals, config.sampling.detailed_warmup))
        config = sampling.escalate_sampling(config)
    assert config is None, "escalation never exhausted"
    ks = [k for k, _ in seen]
    warmups = [w for _, w in seen]
    assert ks[-1] > 4 and warmups[-1] > 250  # both axes eventually moved
    assert all(a <= b for a, b in zip(ks, ks[1:]))  # K never shrinks
    assert sampling.escalate_sampling(FAST) is None  # not sampled: no rung


def test_apply_sampling_defaults():
    config = apply_sampling(baseline_config(max_instructions=20_000), 4)
    s = config.sampling
    assert s.num_intervals == 4
    assert s.interval_length == 500  # 10% of the 5000-instruction period
    assert s.detailed_warmup == 250  # half the interval
    explicit = apply_sampling(FAST, 2, 300, 10)
    assert explicit.sampling == SamplingConfig(2, 300, 10)
    with pytest.raises(ValueError):
        apply_sampling(FAST, 0)


def test_merge_intervals_requires_outcomes():
    with pytest.raises(ValueError):
        sampling.merge_intervals("w", "l", FAST.with_sampling(1, 100), [])


def test_merge_intervals_zero_cycles_never_divides():
    # Pathological intervals that retired nothing (zero cycles, zero IPC)
    # must merge without a ZeroDivisionError anywhere: per-interval IPC,
    # the occupancy weighting, and the relative CI all have zero guards.
    outcomes = [
        sampling.IntervalOutcome(
            index=i,
            counters={"cycles": 0, "retired_instructions": 0},
            avg_ftq_occupancy=float(i),
            final_ftq_depth=0,
            ff_blocks=0,
            ff_instructions_walked=0,
        )
        for i in range(2)
    ]
    merged = sampling.merge_intervals(
        "w", "l", FAST.with_sampling(2, 100), outcomes
    )
    assert merged.ipc == 0.0
    assert merged.sampling["interval_ipc"] == [0.0, 0.0]
    assert merged.sampling["ipc_relative_ci95"] == 0.0
    # Zero total cycles falls back to the unweighted occupancy mean.
    assert merged.avg_ftq_occupancy == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# The equivalence oracle: K=1 over the whole region == a plain run
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,config",
    [
        ("baseline", FAST),
        (
            "udp",
            udp_config(max_instructions=2_000).replace(
                functional_warmup_blocks=800
            ),
        ),
        (
            "miss-heavy",
            miss_heavy_config(max_instructions=1_500).replace(
                functional_warmup_blocks=600
            ),
        ),
    ],
)
def test_single_interval_is_byte_identical_to_plain(name, config):
    plain = run_batch(
        [spec_for("mediawiki", config, 1, name)], jobs=1, no_cache=True
    )[0]
    sampled_config = config.with_sampling(1, config.max_instructions, 0)
    sampled = run_batch(
        [spec_for("mediawiki", sampled_config, 1, name)], jobs=1, no_cache=True
    )[0]
    assert sampled.counters == plain.counters
    assert sampled.avg_ftq_occupancy == plain.avg_ftq_occupancy
    assert sampled.final_ftq_depth == plain.final_ftq_depth
    assert sampled.sampling["num_intervals"] == 1
    assert sampled.sampling["ff_instructions_total"] == 0


# ---------------------------------------------------------------------------
# Multi-interval execution: pooling, determinism, checkpoints
# ---------------------------------------------------------------------------


def _sampled_spec(label="k4", seed=1):
    return spec_for("mediawiki", FAST.with_sampling(4, 200, 100), seed, label)


def test_pooled_intervals_match_serial():
    serial = run_batch([_sampled_spec()], jobs=1, no_cache=True)[0]
    pooled = run_batch([_sampled_spec()], jobs=2, no_cache=True)[0]
    assert _identical(serial, pooled)
    # The ff_* fields report walking actually performed, which shrinks once
    # interval checkpoints exist; everything measured must be invariant.
    stable = lambda b: {k: v for k, v in b.items() if not k.startswith("ff_")}
    assert stable(pooled.sampling) == stable(serial.sampling)


def test_repeated_pooled_runs_are_deterministic():
    # S3: per-interval RNG seeds derive from (base seed, interval index), so
    # worker scheduling order can never leak into the merged counters.
    first = run_batch([_sampled_spec()], jobs=2, no_cache=True)[0]
    second = run_batch([_sampled_spec()], jobs=2, no_cache=True)[0]
    assert _identical(first, second)
    different_seed = run_batch(
        [_sampled_spec(seed=2)], jobs=2, no_cache=True
    )[0]
    assert first.counters != different_seed.counters


def test_sampled_run_reports_interval_stats():
    stats = BatchStats()
    result = run_batch([_sampled_spec()], jobs=1, no_cache=True, progress=stats)[0]
    block = result.sampling
    assert block["num_intervals"] == 4
    assert len(block["interval_ipc"]) == 4
    assert block["ipc_mean"] == pytest.approx(
        sum(block["interval_ipc"]) / 4
    )
    assert block["ipc_ci95_half"] >= 0
    assert block["ff_instructions_total"] > 0
    assert stats.intervals == 4
    assert "4 sampled intervals" in stats.summary()
    assert isinstance(result.counters["cycles"], int)


def test_interval_checkpoints_created_and_reused():
    store = ckpt.CheckpointStore()
    spec = _sampled_spec()
    run_batch([spec], jobs=1, no_cache=True)
    plans = sampling.plan_intervals(spec.config)
    program_key = engine.ProgramStore().key_for(spec.workload, spec.seed)
    interval_keys = [
        ckpt.interval_checkpoint_key(
            program_key, spec.seed, spec.config, p.ff_instructions
        )
        for p in plans
        if p.ff_instructions > 0
    ]
    assert interval_keys and all(store.exists(k) for k in interval_keys)
    # A measured-length tweak reuses the same fast-forward positions only
    # where they coincide; the warmup checkpoint is always shared.
    warmup_key = engine._checkpoint_key_for(spec)
    assert store.exists(warmup_key)
    # Second run restores every interval checkpoint instead of re-walking.
    rerun = run_batch([_sampled_spec(label="again")], jobs=1, no_cache=True)[0]
    assert rerun.sampling["ff_instructions_total"] == 0


def test_sampling_matches_with_and_without_checkpoints(monkeypatch):
    checkpointed = run_batch([_sampled_spec()], jobs=1, no_cache=True)[0]
    monkeypatch.setenv("REPRO_NO_CHECKPOINT", "1")
    scratch = run_batch([_sampled_spec()], jobs=1, no_cache=True)[0]
    assert _identical(checkpointed, scratch)


def test_no_sampling_env_normalizes_to_full_fidelity(monkeypatch):
    plain = run_batch([spec_for("mediawiki", FAST, 1, "plain")], jobs=1)[0]
    monkeypatch.setenv(sampling.NO_SAMPLING_ENV, "1")
    stats = BatchStats()
    gated = run_batch([_sampled_spec()], jobs=1, progress=stats)[0]
    assert gated.sampling is None
    assert gated.counters == plain.counters
    # The normalized spec shares the plain run's cache entry.
    assert stats.cache_hits == 1 and stats.simulated == 0


def test_sampled_result_serialization_round_trip():
    result = run_batch([_sampled_spec()], jobs=1, no_cache=True)[0]
    clone = SimResult.from_dict(result.to_dict())
    assert clone == result
    assert clone.sampling == result.sampling


# ---------------------------------------------------------------------------
# Warm fast-forward: the data-side replay
# ---------------------------------------------------------------------------


def _warm_sim(config, warm: bool, distance: int = 1_000):
    # ``fast_forward_to`` takes an absolute true-path position, so the
    # distance is offset past wherever functional warmup stopped walking.
    from repro.sim.profile import build_simulator

    sim = build_simulator("mediawiki", config, seed=1)
    sim.functional_warmup(config.functional_warmup_blocks)
    sim.fast_forward_to(sim.oracle.instrs_walked + distance, warm=warm)
    return sim


def test_warm_fastforward_fills_the_data_side():
    sampled = FAST.with_sampling(4, 200, 100)
    cold = _warm_sim(sampled, warm=False)
    warm = _warm_sim(sampled, warm=True)
    # Cold walks leave the data caches exactly as functional warmup did
    # (instruction lines only); warming replays the walked loads/stores.
    assert not cold.data_gen.occurrences_dict()
    assert warm.data_gen.occurrences_dict()
    lines = lambda sim: sum(len(s) for s in sim.hierarchy.l1d.state_lines())
    assert lines(cold) == 0
    assert lines(warm) > 0
    # The warming replay never consumes cycles or measured counters.
    assert warm.cycle == 0 and cold.cycle == 0


def test_warm_fastforward_defaults_from_sampling_config():
    warm_default = _warm_sim(FAST.with_sampling(4, 200, 100), warm=None)
    assert warm_default.data_gen.occurrences_dict()
    cold_config = FAST.replace(
        sampling=dataclasses.replace(
            FAST.with_sampling(4, 200, 100).sampling, warm_fastforward=False
        )
    )
    cold_default = _warm_sim(cold_config, warm=None)
    assert not cold_default.data_gen.occurrences_dict()


def test_chained_warm_fastforward_equals_direct_jump():
    # Interval checkpoints chain fast-forwards; every piece of
    # warming-mutated state must therefore be position-deterministic.
    sampled = FAST.with_sampling(4, 200, 100)
    chained = _warm_sim(sampled, warm=True)
    target = chained.oracle.instrs_walked + 600
    chained.fast_forward_to(target, warm=True)
    from repro.sim.profile import build_simulator

    direct = build_simulator("mediawiki", sampled, seed=1)
    direct.functional_warmup(sampled.functional_warmup_blocks)
    direct.fast_forward_to(target, warm=True)
    assert ckpt.capture_warmup(chained) == ckpt.capture_warmup(direct)


def test_cold_fastforward_config_still_runs_and_differs():
    warm_spec = _sampled_spec(label="warmff")
    cold_config = FAST.replace(
        sampling=dataclasses.replace(
            warm_spec.config.sampling, warm_fastforward=False
        )
    )
    cold_spec = spec_for("mediawiki", cold_config, 1, "coldff")
    warm = run_batch([warm_spec], jobs=1, no_cache=True)[0]
    cold = run_batch([cold_spec], jobs=1, no_cache=True)[0]
    # Both merge cleanly; the data replay makes the merged counters differ.
    assert warm.sampling["num_intervals"] == cold.sampling["num_intervals"] == 4
    assert warm.counters != cold.counters
    # Serial and pooled stay identical in cold mode too.
    pooled_cold = run_batch([cold_spec], jobs=2, no_cache=True)[0]
    assert _identical(cold, pooled_cold)


# ---------------------------------------------------------------------------
# Adaptive sampling: run_batch(..., sample_error=...)
# ---------------------------------------------------------------------------


def test_adaptive_annotates_met_target():
    result = run_batch(
        [_sampled_spec(label="adaptive")], jobs=1, no_cache=True,
        sample_error=0.99,
    )[0]
    assert result.sampling["adaptive"] == {
        "target": 0.99, "rounds": 1, "met": True,
    }


def test_adaptive_escalates_until_exhaustion_on_impossible_target():
    # FAST's shape (2000 instructions, K=4 x 200+100) cannot double K, so
    # escalation grows the detailed warmup to its period bound and stops.
    result = run_batch(
        [_sampled_spec(label="tight")], jobs=1, no_cache=True,
        sample_error=1e-9,
    )[0]
    adaptive = result.sampling["adaptive"]
    assert adaptive["rounds"] > 1
    assert not adaptive["met"]
    assert result.sampling["detailed_warmup"] > 100


def test_adaptive_ignores_plain_specs_and_rejects_bad_targets():
    plain = run_batch(
        [spec_for("mediawiki", FAST, 1, "plain")], jobs=1, no_cache=True,
        sample_error=0.5,
    )[0]
    assert plain.sampling is None
    for bad in (0.0, 1.0, -0.1, 2.0):
        with pytest.raises(ValueError, match="sample_error"):
            run_batch([], sample_error=bad)


def test_adaptive_respects_no_sampling_env(monkeypatch):
    monkeypatch.setenv(sampling.NO_SAMPLING_ENV, "1")
    result = run_batch(
        [_sampled_spec()], jobs=1, no_cache=True, sample_error=0.5
    )[0]
    assert result.sampling is None  # normalized to full fidelity, no loop


def test_boolean_env_gates_share_one_parser(monkeypatch):
    # The opt-out gates all route through artifacts.env_truthy, so the
    # spelled-out truthy values ("YES", "on", "True") behave identically
    # everywhere instead of only "1" being honoured by some of them.
    from repro.sim.profile import build_simulator
    from repro.sim.simulator import NO_FASTFORWARD_ENV

    for value in ("YES", "on", "True"):
        monkeypatch.setenv(sampling.NO_SAMPLING_ENV, value)
        monkeypatch.setenv(engine.NO_CACHE_ENV, value)
        assert sampling.sampling_disabled()
        assert engine._cache_disabled_by_env()
    monkeypatch.setenv(NO_FASTFORWARD_ENV, "yes")
    assert not build_simulator("mediawiki", FAST, seed=1).fast_forward_enabled
    monkeypatch.setenv(NO_FASTFORWARD_ENV, "0")  # falsy spelling
    assert build_simulator("mediawiki", FAST, seed=1).fast_forward_enabled


@pytest.mark.slow
def test_sampling_error_is_small_at_benchmark_scale():
    # benchmarks/bench_sampling.py's small-footprint row, as an executable
    # accuracy gate.  Reduced regions are useless here: short intervals
    # alias against program phases and the measured error swings 1-13% with
    # tiny shape changes, so this runs the real 500k-instruction shape.
    # Deselected from tier-1 by the "not slow" default marker expression
    # (run with: pytest -m slow tests/sim/test_sampling.py).
    from repro.analysis.stats import ipc_sampling_error

    config = baseline_config(max_instructions=500_000)
    plain = run_batch(
        [spec_for("mediawiki", config, 1, "full")], jobs=1, no_cache=True
    )[0]
    sampled = run_batch(
        [
            spec_for(
                "mediawiki",
                config.with_sampling(10, 4_000, 1_500),
                1,
                "sampled",
            )
        ],
        jobs=1,
        no_cache=True,
    )[0]
    assert ipc_sampling_error(sampled, plain) < 0.01
    assert sampled.sampling["num_intervals"] == 10


@pytest.mark.slow
def test_warm_fastforward_fixes_large_footprint_error_at_benchmark_scale():
    # The headline row of the warming change: verilator's working set blows
    # through L1/L2, and before warm fast-forwards its sampled IPC was off
    # by ~8% (BENCH_sampling.json history).  With the data-side replay the
    # same region samples to within 2%.
    from repro.analysis.stats import ipc_sampling_error

    config = baseline_config(max_instructions=500_000)
    plain = run_batch(
        [spec_for("verilator", config, 1, "full")], jobs=1, no_cache=True
    )[0]
    sampled = run_batch(
        [
            spec_for(
                "verilator",
                config.with_sampling(25, 1_000, 500),
                1,
                "sampled",
            )
        ],
        jobs=1,
        no_cache=True,
    )[0]
    assert ipc_sampling_error(sampled, plain) < 0.02


def test_sampled_results_cached_separately_from_plain(tmp_path, monkeypatch):
    monkeypatch.setenv(engine.CACHE_DIR_ENV, str(tmp_path / "iso"))
    cache = engine.ResultCache()
    plain_spec = spec_for("mediawiki", FAST, 1, "plain")
    run_batch([plain_spec], cache=cache)
    run_batch([_sampled_spec()], cache=cache)
    assert cache.info().entries == 2  # distinct keys: config includes sampling
    warm = BatchStats()
    run_batch([_sampled_spec()], cache=cache, progress=warm)
    assert warm.cache_hits == 1 and warm.simulated == 0
