"""Interval-sampled simulation: planning, equivalence, and determinism.

The load-bearing property is the equivalence oracle: one interval covering
the whole measured region with no detailed warmup must produce counters
byte-identical to a plain full-fidelity run, on every preset family the
benchmark sweeps.  Everything else (pool scheduling, per-interval RNG
seeds, checkpoint reuse, the ``REPRO_NO_SAMPLING`` escape hatch) must never
change a merged result.
"""

import json

import pytest

from repro.common.config import ConfigError, SamplingConfig
from repro.common.rng import interval_seed
from repro.sim import checkpoint as ckpt
from repro.sim import engine, sampling
from repro.sim.engine import BatchStats, run_batch, spec_for
from repro.sim.metrics import SimResult
from repro.sim.presets import (
    apply_sampling,
    baseline_config,
    miss_heavy_config,
    udp_config,
)

FAST = baseline_config(max_instructions=2_000).replace(
    functional_warmup_blocks=800
)


@pytest.fixture(autouse=True)
def _sampling_env(monkeypatch, tmp_path):
    monkeypatch.setenv(engine.JOBS_ENV, "2")
    monkeypatch.setenv(engine.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.delenv(engine.NO_CACHE_ENV, raising=False)
    monkeypatch.delenv("REPRO_NO_CHECKPOINT", raising=False)
    monkeypatch.delenv(sampling.NO_SAMPLING_ENV, raising=False)


def _identical(a: SimResult, b: SimResult) -> bool:
    return json.dumps(a.counters, sort_keys=True) == json.dumps(
        b.counters, sort_keys=True
    ) and a.avg_ftq_occupancy == b.avg_ftq_occupancy


# ---------------------------------------------------------------------------
# Configuration and planning
# ---------------------------------------------------------------------------


def test_sampling_config_validation():
    SamplingConfig().validate(10_000)  # disabled is always fine
    with pytest.raises(ConfigError):
        SamplingConfig(num_intervals=-1).validate(10_000)
    with pytest.raises(ConfigError):
        SamplingConfig(num_intervals=2).validate(10_000)  # zero length
    with pytest.raises(ConfigError):
        SamplingConfig(2, 4_000, 2_000).validate(10_000)  # exceeds period
    SamplingConfig(2, 4_000, 1_000).validate(10_000)


def test_sampling_rejects_timed_warmup():
    config = FAST.replace(warmup_instructions=200).with_sampling(2, 100)
    with pytest.raises(ConfigError, match="warmup_instructions"):
        config.validate()
    config.replace(warmup_instructions=0).validate()


def test_with_and_without_sampling_round_trip():
    sampled = FAST.with_sampling(4, 100, 50)
    assert sampled.sampling == SamplingConfig(4, 100, 50)
    assert sampled.without_sampling() == FAST
    assert FAST.without_sampling() == FAST  # no-op when already plain


def test_interval_seed_identity_and_determinism():
    assert interval_seed(7, 0) == 7  # K=1 keeps the base seed
    assert interval_seed(7, 3) == interval_seed(7, 3)
    seeds = {interval_seed(7, i) for i in range(16)}
    assert len(seeds) == 16
    assert interval_seed(7, 3) != interval_seed(8, 3)


def test_plan_intervals_anchors_measurement_at_period_end():
    config = baseline_config(max_instructions=20_000).with_sampling(4, 500, 250)
    plans = sampling.plan_intervals(config)
    assert [p.index for p in plans] == [0, 1, 2, 3]
    assert [p.ff_instructions for p in plans] == [4_250, 9_250, 14_250, 19_250]
    assert all(p.measure_instructions == 500 for p in plans)
    assert all(p.detailed_warmup == 250 for p in plans)
    assert plans[0].rng_seed == config.seed
    assert len({p.rng_seed for p in plans}) == 4
    with pytest.raises(ValueError):
        sampling.plan_intervals(baseline_config())


def test_degenerate_plan_fast_forwards_nothing():
    config = FAST.with_sampling(1, FAST.max_instructions, 0)
    (plan,) = sampling.plan_intervals(config)
    assert plan.ff_instructions == 0
    assert plan.measure_instructions == FAST.max_instructions
    assert plan.rng_seed == config.seed


def test_apply_sampling_defaults():
    config = apply_sampling(baseline_config(max_instructions=20_000), 4)
    s = config.sampling
    assert s.num_intervals == 4
    assert s.interval_length == 500  # 10% of the 5000-instruction period
    assert s.detailed_warmup == 250  # half the interval
    explicit = apply_sampling(FAST, 2, 300, 10)
    assert explicit.sampling == SamplingConfig(2, 300, 10)
    with pytest.raises(ValueError):
        apply_sampling(FAST, 0)


def test_merge_intervals_requires_outcomes():
    with pytest.raises(ValueError):
        sampling.merge_intervals("w", "l", FAST.with_sampling(1, 100), [])


# ---------------------------------------------------------------------------
# The equivalence oracle: K=1 over the whole region == a plain run
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,config",
    [
        ("baseline", FAST),
        (
            "udp",
            udp_config(max_instructions=2_000).replace(
                functional_warmup_blocks=800
            ),
        ),
        (
            "miss-heavy",
            miss_heavy_config(max_instructions=1_500).replace(
                functional_warmup_blocks=600
            ),
        ),
    ],
)
def test_single_interval_is_byte_identical_to_plain(name, config):
    plain = run_batch(
        [spec_for("mediawiki", config, 1, name)], jobs=1, no_cache=True
    )[0]
    sampled_config = config.with_sampling(1, config.max_instructions, 0)
    sampled = run_batch(
        [spec_for("mediawiki", sampled_config, 1, name)], jobs=1, no_cache=True
    )[0]
    assert sampled.counters == plain.counters
    assert sampled.avg_ftq_occupancy == plain.avg_ftq_occupancy
    assert sampled.final_ftq_depth == plain.final_ftq_depth
    assert sampled.sampling["num_intervals"] == 1
    assert sampled.sampling["ff_instructions_total"] == 0


# ---------------------------------------------------------------------------
# Multi-interval execution: pooling, determinism, checkpoints
# ---------------------------------------------------------------------------


def _sampled_spec(label="k4", seed=1):
    return spec_for("mediawiki", FAST.with_sampling(4, 200, 100), seed, label)


def test_pooled_intervals_match_serial():
    serial = run_batch([_sampled_spec()], jobs=1, no_cache=True)[0]
    pooled = run_batch([_sampled_spec()], jobs=2, no_cache=True)[0]
    assert _identical(serial, pooled)
    # The ff_* fields report walking actually performed, which shrinks once
    # interval checkpoints exist; everything measured must be invariant.
    stable = lambda b: {k: v for k, v in b.items() if not k.startswith("ff_")}
    assert stable(pooled.sampling) == stable(serial.sampling)


def test_repeated_pooled_runs_are_deterministic():
    # S3: per-interval RNG seeds derive from (base seed, interval index), so
    # worker scheduling order can never leak into the merged counters.
    first = run_batch([_sampled_spec()], jobs=2, no_cache=True)[0]
    second = run_batch([_sampled_spec()], jobs=2, no_cache=True)[0]
    assert _identical(first, second)
    different_seed = run_batch(
        [_sampled_spec(seed=2)], jobs=2, no_cache=True
    )[0]
    assert first.counters != different_seed.counters


def test_sampled_run_reports_interval_stats():
    stats = BatchStats()
    result = run_batch([_sampled_spec()], jobs=1, no_cache=True, progress=stats)[0]
    block = result.sampling
    assert block["num_intervals"] == 4
    assert len(block["interval_ipc"]) == 4
    assert block["ipc_mean"] == pytest.approx(
        sum(block["interval_ipc"]) / 4
    )
    assert block["ipc_ci95_half"] >= 0
    assert block["ff_instructions_total"] > 0
    assert stats.intervals == 4
    assert "4 sampled intervals" in stats.summary()
    assert isinstance(result.counters["cycles"], int)


def test_interval_checkpoints_created_and_reused():
    store = ckpt.CheckpointStore()
    spec = _sampled_spec()
    run_batch([spec], jobs=1, no_cache=True)
    plans = sampling.plan_intervals(spec.config)
    program_key = engine.ProgramStore().key_for(spec.workload, spec.seed)
    interval_keys = [
        ckpt.interval_checkpoint_key(
            program_key, spec.seed, spec.config, p.ff_instructions
        )
        for p in plans
        if p.ff_instructions > 0
    ]
    assert interval_keys and all(store.exists(k) for k in interval_keys)
    # A measured-length tweak reuses the same fast-forward positions only
    # where they coincide; the warmup checkpoint is always shared.
    warmup_key = engine._checkpoint_key_for(spec)
    assert store.exists(warmup_key)
    # Second run restores every interval checkpoint instead of re-walking.
    rerun = run_batch([_sampled_spec(label="again")], jobs=1, no_cache=True)[0]
    assert rerun.sampling["ff_instructions_total"] == 0


def test_sampling_matches_with_and_without_checkpoints(monkeypatch):
    checkpointed = run_batch([_sampled_spec()], jobs=1, no_cache=True)[0]
    monkeypatch.setenv("REPRO_NO_CHECKPOINT", "1")
    scratch = run_batch([_sampled_spec()], jobs=1, no_cache=True)[0]
    assert _identical(checkpointed, scratch)


def test_no_sampling_env_normalizes_to_full_fidelity(monkeypatch):
    plain = run_batch([spec_for("mediawiki", FAST, 1, "plain")], jobs=1)[0]
    monkeypatch.setenv(sampling.NO_SAMPLING_ENV, "1")
    stats = BatchStats()
    gated = run_batch([_sampled_spec()], jobs=1, progress=stats)[0]
    assert gated.sampling is None
    assert gated.counters == plain.counters
    # The normalized spec shares the plain run's cache entry.
    assert stats.cache_hits == 1 and stats.simulated == 0


def test_sampled_result_serialization_round_trip():
    result = run_batch([_sampled_spec()], jobs=1, no_cache=True)[0]
    clone = SimResult.from_dict(result.to_dict())
    assert clone == result
    assert clone.sampling == result.sampling


@pytest.mark.slow
def test_sampling_error_is_small_at_benchmark_scale():
    # benchmarks/bench_sampling.py's headline row, as an executable accuracy
    # gate.  Reduced regions are useless here: short intervals alias against
    # program phases and the measured error swings 1-13% with tiny shape
    # changes, so this runs the real 500k-instruction shape.  Deselected
    # from tier-1 by the "not slow" default marker expression (run with:
    # pytest -m slow tests/sim/test_sampling.py).
    from repro.analysis.stats import ipc_sampling_error

    config = baseline_config(max_instructions=500_000)
    plain = run_batch(
        [spec_for("mediawiki", config, 1, "full")], jobs=1, no_cache=True
    )[0]
    sampled = run_batch(
        [
            spec_for(
                "mediawiki",
                config.with_sampling(10, 4_000, 3_000),
                1,
                "sampled",
            )
        ],
        jobs=1,
        no_cache=True,
    )[0]
    assert ipc_sampling_error(sampled, plain) < 0.02
    assert sampled.sampling["num_intervals"] == 10


def test_sampled_results_cached_separately_from_plain(tmp_path, monkeypatch):
    monkeypatch.setenv(engine.CACHE_DIR_ENV, str(tmp_path / "iso"))
    cache = engine.ResultCache()
    plain_spec = spec_for("mediawiki", FAST, 1, "plain")
    run_batch([plain_spec], cache=cache)
    run_batch([_sampled_spec()], cache=cache)
    assert cache.info().entries == 2  # distinct keys: config includes sampling
    warm = BatchStats()
    run_batch([_sampled_spec()], cache=cache, progress=warm)
    assert warm.cache_hits == 1 and warm.simulated == 0
