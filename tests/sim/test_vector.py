"""SoA vector + compiled kernels: byte-identity with the object oracle.

Style of ``tests/sim/test_fastforward.py``: the array-oriented kernels
(SoA TAGE/BTB/cache state, the planned fetch-window walker, the precomputed
dep-flag table, issue-scan wake gating) and the runtime-compiled C kernels
layered on top of them must be pure wall-clock optimizations — for any
(workload, preset) pair the final cycle count and every measured counter
must match the object-based implementations exactly.  The object path stays
in the tree (``REPRO_NO_VECTOR`` / ``vector=False``) precisely so it can
serve as the oracle, and the interpreted SoA path is in turn the oracle for
the compiled path (``REPRO_NO_COMPILED`` / ``compiled=False``).

Checkpoints must also be layout-neutral: a warmup blob captured in any
mode must restore into any mode and still reproduce the from-scratch
counters (schema 2 serializes logical state, not object layout).
"""

import pytest

from repro.sim import checkpoint as ckpt
from repro.sim.presets import PRESET_BUILDERS
from repro.sim.profile import build_simulator
from repro.sim.simulator import Simulator
from repro.workloads import store as program_store
from repro.workloads.profiles import get_profile

N = 4_000
SEED = 1

# The three execution modes, least to most accelerated.  "compiled" silently
# degrades to "vector" on a compiler-less host, which keeps these identity
# tests meaningful everywhere (they become vector-vs-vector there).
_MODES = {
    "object": dict(vector=False, compiled=False),
    "vector": dict(vector=True, compiled=False),
    "compiled": dict(vector=True, compiled=True),
}


def _run(workload: str, preset: str, n: int, vector: bool):
    config = PRESET_BUILDERS[preset](n)
    simulator = build_simulator(workload, config, vector=vector)
    simulator.run()
    return simulator


def _run_mode(workload: str, preset: str, n: int, mode: str):
    config = PRESET_BUILDERS[preset](n)
    simulator = build_simulator(workload, config, **_MODES[mode])
    simulator.run()
    return simulator


@pytest.mark.parametrize("preset", sorted(PRESET_BUILDERS))
def test_vector_counters_identical(preset):
    vec = _run("gcc", preset, N, vector=True)
    obj = _run("gcc", preset, N, vector=False)
    assert vec.cycle == obj.cycle
    assert vec.measured_counters() == obj.measured_counters()


@pytest.mark.parametrize("workload", ["verilator", "xgboost"])
def test_vector_counters_identical_stress_workloads(workload):
    # The two pathological frontends from the paper, on the preset built to
    # maximize icache-miss churn through the SoA cache arrays.
    vec = _run(workload, "miss-heavy", N, vector=True)
    obj = _run(workload, "miss-heavy", N, vector=False)
    assert vec.cycle == obj.cycle
    assert vec.measured_counters() == obj.measured_counters()


@pytest.mark.parametrize("preset", sorted(PRESET_BUILDERS))
def test_compiled_counters_identical(preset):
    compiled = _run_mode("gcc", preset, N, "compiled")
    vec = _run_mode("gcc", preset, N, "vector")
    assert compiled.cycle == vec.cycle
    assert compiled.measured_counters() == vec.measured_counters()


@pytest.mark.parametrize("workload", ["verilator", "xgboost"])
def test_compiled_counters_identical_stress_workloads(workload):
    compiled = _run_mode(workload, "miss-heavy", N, "compiled")
    vec = _run_mode(workload, "miss-heavy", N, "vector")
    assert compiled.cycle == vec.cycle
    assert compiled.measured_counters() == vec.measured_counters()


def test_env_var_disables_vector(monkeypatch):
    monkeypatch.setenv("REPRO_NO_VECTOR", "1")
    config = PRESET_BUILDERS["baseline"](N)
    simulator = build_simulator("gcc", config)
    assert not simulator.vector_enabled


def test_explicit_vector_flag_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_VECTOR", "1")
    config = PRESET_BUILDERS["baseline"](N)
    simulator = build_simulator("gcc", config, vector=True)
    assert simulator.vector_enabled


def test_env_var_disables_compiled(monkeypatch):
    # Unlike REPRO_NO_VECTOR, an explicit compiled=True does NOT override
    # the env: compiled kernels may be unavailable for external reasons
    # (no compiler), so graceful degradation is the contract throughout.
    monkeypatch.setenv("REPRO_NO_COMPILED", "1")
    config = PRESET_BUILDERS["baseline"](N)
    simulator = build_simulator("gcc", config)
    assert not simulator.compiled_enabled
    forced = build_simulator("gcc", config, compiled=True)
    assert not forced.compiled_enabled


def test_compiled_implies_vector():
    # The compiled kernels operate on the SoA buffers, so a compiled
    # simulator is necessarily a vector simulator.
    config = PRESET_BUILDERS["baseline"](N)
    simulator = build_simulator("gcc", config, vector=False, compiled=True)
    assert not simulator.vector_enabled
    assert not simulator.compiled_enabled


@pytest.mark.parametrize("capture_mode", sorted(_MODES))
@pytest.mark.parametrize("restore_mode", sorted(_MODES))
def test_checkpoint_round_trips_across_modes(
    tmp_path, monkeypatch, capture_mode, restore_mode
):
    """A warmup blob is layout-neutral: any capture/restore mode combo must
    reproduce the from-scratch counters of the restoring mode."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CHECKPOINT", raising=False)
    config = PRESET_BUILDERS["udp"](N, SEED)
    prof = get_profile("gcc")
    program = program_store.program_for("gcc", SEED)

    donor = Simulator(
        program, config, data_profile=prof.data, **_MODES[capture_mode]
    )
    donor.functional_warmup(config.functional_warmup_blocks)
    blob = ckpt.capture_warmup(donor)

    restored = Simulator(
        program, config, data_profile=prof.data, **_MODES[restore_mode]
    )
    ckpt.restore_warmup(restored, blob)
    restored.run()

    scratch = Simulator(
        program, config, data_profile=prof.data, **_MODES[restore_mode]
    )
    scratch.functional_warmup(config.functional_warmup_blocks)
    scratch.run()

    assert restored.cycle == scratch.cycle
    assert restored.measured_counters() == scratch.measured_counters()


@pytest.mark.parametrize("capture_mode", sorted(_MODES))
@pytest.mark.parametrize("restore_mode", sorted(_MODES))
def test_warm_fastforward_checkpoints_cross_modes(
    tmp_path, monkeypatch, capture_mode, restore_mode
):
    """Schema-3 state — the data caches filled by the warming replay, the
    stream prefetcher table, and the data generator's occurrence counters —
    survives any capture/restore mode combo just like warmup state does."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CHECKPOINT", raising=False)
    config = PRESET_BUILDERS["udp"](N, SEED).with_sampling(4, 500, 250)
    prof = get_profile("gcc")
    program = program_store.program_for("gcc", SEED)

    def fresh(mode):
        return Simulator(
            program, config, data_profile=prof.data, **_MODES[mode]
        )

    donor = fresh(capture_mode)
    donor.functional_warmup(config.functional_warmup_blocks)
    target = donor.oracle.instrs_walked + 600
    donor.fast_forward_to(target, warm=True)
    assert donor.data_gen.occurrences_dict()
    blob = ckpt.capture_warmup(donor)

    restored = fresh(restore_mode)
    ckpt.restore_warmup(restored, blob)

    scratch = fresh(restore_mode)
    scratch.functional_warmup(config.functional_warmup_blocks)
    scratch.fast_forward_to(target, warm=True)

    # The warming-mutated state restores layout-neutrally...
    assert (
        restored.data_gen.occurrences_dict()
        == scratch.data_gen.occurrences_dict()
    )
    assert (
        restored.hierarchy.l1d.state_lines()
        == scratch.hierarchy.l1d.state_lines()
    )
    assert (restored.hierarchy.stream is None) == (
        scratch.hierarchy.stream is None
    )
    if restored.hierarchy.stream is not None:
        assert (
            restored.hierarchy.stream.state_dict()
            == scratch.hierarchy.stream.state_dict()
        )
    # ...and the measured region proceeds byte-identically.
    restored.run()
    scratch.run()
    assert restored.cycle == scratch.cycle
    assert restored.measured_counters() == scratch.measured_counters()
