"""Pipeline tracer."""

from repro.common.config import SimConfig
from repro.sim.simulator import Simulator
from repro.sim.tracer import PipelineTracer
from repro.workloads import micro


def traced_sim(program, max_events=5_000, instructions=1_500):
    sim = Simulator(
        program,
        SimConfig(max_instructions=instructions, functional_warmup_blocks=0),
    )
    tracer = PipelineTracer(sim, max_events=max_events)
    sim.run()
    return sim, tracer


def test_records_resteers_on_mispredicting_program():
    sim, tracer = traced_sim(micro.mispredicting_loop())
    assert tracer.cycles_with("RESTEER")
    assert tracer.summary().get("RESTEER", 0) == sim.counters["resteers"]


def test_records_misses_on_cold_program():
    _, tracer = traced_sim(micro.long_straight(num_blocks=1024, block_instrs=8))
    summary = tracer.summary()
    assert "MISS (demand icache miss)" in summary or "PF+ (on-path prefetch)" in summary


def test_render_window():
    sim, tracer = traced_sim(micro.mispredicting_loop())
    text = tracer.render(0, sim.cycle)
    assert "cycle" in text


def test_render_empty_window():
    sim, tracer = traced_sim(micro.straight_loop())
    assert "no traced events" in tracer.render(10**9, 10**9 + 5)


def test_saturation_bounds_memory():
    sim, tracer = traced_sim(micro.mispredicting_loop(), max_events=5,
                             instructions=2_000)
    assert len(tracer.events) <= 5
    if tracer.saturated:
        assert "saturated" in tracer.render(0, sim.cycle)


def test_counters_still_correct_after_wrapping():
    sim, tracer = traced_sim(micro.mispredicting_loop())
    # The wrapped bump must not change counter arithmetic.
    assert sim.counters["retired_instructions"] >= 1_500


def test_detach_restores_bump():
    sim = Simulator(
        micro.straight_loop(),
        SimConfig(max_instructions=200, functional_warmup_blocks=0),
    )
    tracer = PipelineTracer(sim)
    tracer.detach()
    sim.run()
    assert tracer.events == []  # nothing recorded after detach
