"""White-box tests of the simulator's L1I demand/fill state machine.

These drive `_demand_access` / `_process_fills` directly with handcrafted
FTQ entries, pinning down the utility/timeliness bookkeeping that the
paper's metrics (and UFTQ/UDP training) depend on.
"""

import pytest

from repro.common.config import SimConfig, UDPConfig
from repro.frontend.fetch_block import FTQEntry
from repro.sim.simulator import Simulator
from repro.workloads import micro


def make_sim(**kwargs):
    config = SimConfig(max_instructions=100, functional_warmup_blocks=0, **kwargs)
    return Simulator(micro.straight_loop(), config)


def entry(start, on_path=True, assumed_off=False, seq=0):
    return FTQEntry(seq=seq, start=start, end=start + 32, on_path=on_path,
                    assumed_off_path=assumed_off)


LINE = 0x8000  # an address outside the tiny loop's code


def test_demand_miss_allocates_and_sets_ready():
    sim = make_sim()
    e = entry(LINE)
    sim._demand_access(e, cycle=10)
    assert sim.counters["icache_demand_misses"] == 1
    assert e.ready_cycle > 10
    assert sim.mshr.lookup(LINE) is not None


def test_fill_installs_line():
    sim = make_sim()
    e = entry(LINE)
    sim._demand_access(e, cycle=10)
    sim._process_fills(e.ready_cycle)
    assert sim.l1i.contains(LINE)
    assert sim.counters["l1i_fills"] == 1


def test_second_demand_merges_with_inflight():
    sim = make_sim()
    a = entry(LINE, seq=0)
    b = entry(LINE, seq=1)
    sim._demand_access(a, cycle=10)
    sim._demand_access(b, cycle=12)
    assert sim.counters["icache_demand_mshr_merges"] == 1
    assert b.ready_cycle == a.ready_cycle


def test_demand_merge_with_prefetch_counts_untimely():
    sim = make_sim()
    latency, level = sim.hierarchy.instruction_miss_latency(LINE)
    sim.mshr.allocate(LINE, ready_cycle=200, is_prefetch=True, off_path=True)
    sim._demand_access(entry(LINE), cycle=10)
    assert sim.counters["atr_mshr_hits"] == 1
    assert sim.counters["prefetch_useful"] == 1
    assert sim.counters["prefetch_useful_off_path"] == 1


def test_merged_prefetch_fills_without_prefetch_bit():
    sim = make_sim()
    sim.mshr.allocate(LINE, ready_cycle=200, is_prefetch=True)
    sim._demand_access(entry(LINE), cycle=10)  # on-path merge claims it
    sim._process_fills(200)
    line = sim.l1i.lookup(LINE, touch=False)
    assert line is not None
    assert not line.prefetch_bit  # already consumed in flight


def test_timely_prefetch_hit_clears_bit_once():
    sim = make_sim()
    sim.l1i.install(LINE, prefetch=True, prefetch_off_path=True)
    sim._demand_access(entry(LINE, seq=0), cycle=10)
    assert sim.counters["atr_icache_hits"] == 1
    assert sim.counters["prefetch_useful"] == 1
    # A second demand touch must not double-count.
    sim._demand_access(entry(LINE, seq=1), cycle=11)
    assert sim.counters["prefetch_useful"] == 1


def test_wrong_path_demand_does_not_claim_usefulness():
    sim = make_sim()
    sim.l1i.install(LINE, prefetch=True)
    sim._demand_access(entry(LINE, on_path=False), cycle=10)
    assert sim.counters["prefetch_useful"] == 0
    line = sim.l1i.lookup(LINE, touch=False)
    assert line.prefetch_bit  # still awaiting an on-path consumer


def test_eviction_of_unused_prefetch_counts_useless():
    sim = make_sim()
    # Fill one L1I set (64 sets x 8 ways; same set = stride 64*64 bytes).
    stride = 64 * 64
    base = 0x10_0000
    sim.l1i.install(base, prefetch=True, prefetch_off_path=True)
    for i in range(1, 9):
        sim.l1i.install(base + i * stride)
    assert sim.counters["prefetch_useless"] == 1
    assert sim.counters["prefetch_useless_off_path"] == 1


def test_udp_candidate_hit_triggers_direct_learning():
    sim = make_sim(udp=UDPConfig(enabled=True, infinite_storage=True))
    sim.l1i.install(LINE, prefetch=True, prefetch_off_path=True,
                    prefetch_udp_candidate=True)
    sim._demand_access(entry(LINE), cycle=10)
    assert sim.counters["udp_learned_useful_direct"] == 1
    assert sim.udp.useful_set.contains(LINE)


def test_mshr_full_leaves_entry_unready():
    sim = make_sim()
    capacity = sim.mshr.capacity
    for i in range(capacity):
        sim.mshr.allocate(0x20_0000 + i * 64, 500, is_prefetch=False)
    e = entry(LINE)
    sim._demand_access(e, cycle=10)
    assert e.ready_cycle == -1
    assert sim.counters["icache_mshr_full_stalls"] == 1
