"""Golden-counter regression: every preset's full counter set is pinned.

One fixed-seed run per preset (gcc, 3000 instructions, seed 1) with the
complete ``measured_counters()`` dict checked into
``tests/sim/fixtures/golden_counters.json``.  Any change to simulated
behaviour — however small — shows up as a counter diff here, which makes
the fixture the tripwire for "performance work must not change results"
(the fast-forward equivalence tests check FF-vs-naive; this one checks
today-vs-the-day-the-fixture-was-blessed).

Intentional behaviour changes must regenerate the fixture and review the
diff::

    PYTHONPATH=src python tests/sim/test_golden_counters.py
"""

import json
import os

import pytest

from repro.sim.presets import PRESET_BUILDERS
from repro.sim.profile import build_simulator

WORKLOAD = "gcc"
INSTRUCTIONS = 3_000
SEED = 1
FIXTURE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "golden_counters.json"
)


def _run_preset(preset: str) -> dict[str, int]:
    config = PRESET_BUILDERS[preset](INSTRUCTIONS, SEED)
    simulator = build_simulator(WORKLOAD, config, SEED)
    simulator.run()
    return simulator.measured_counters()


def _load_fixture() -> dict:
    with open(FIXTURE, encoding="utf-8") as fh:
        return json.load(fh)


def test_fixture_covers_every_preset():
    golden = _load_fixture()["counters"]
    assert sorted(golden) == sorted(PRESET_BUILDERS), (
        "preset list changed: regenerate the fixture "
        "(PYTHONPATH=src python tests/sim/test_golden_counters.py)"
    )


@pytest.mark.parametrize("preset", sorted(PRESET_BUILDERS))
def test_counters_match_golden(preset):
    golden = _load_fixture()["counters"][preset]
    current = _run_preset(preset)
    assert current == golden, (
        f"{preset}: measured counters diverged from the blessed fixture; "
        "if intentional, regenerate and review the diff"
    )


def _regenerate() -> None:
    payload = {
        "workload": WORKLOAD,
        "instructions": INSTRUCTIONS,
        "seed": SEED,
        "counters": {
            preset: _run_preset(preset) for preset in sorted(PRESET_BUILDERS)
        },
    }
    with open(FIXTURE, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {FIXTURE}")


if __name__ == "__main__":
    _regenerate()
