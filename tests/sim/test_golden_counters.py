"""Golden-counter regression: every preset's full counter set is pinned.

One fixed-seed run per preset (gcc, 3000 instructions, seed 1) with the
complete ``measured_counters()`` dict checked into
``tests/sim/fixtures/golden_counters.json``.  Any change to simulated
behaviour — however small — shows up as a counter diff here, which makes
the fixture the tripwire for "performance work must not change results"
(the fast-forward equivalence tests check FF-vs-naive; this one checks
today-vs-the-day-the-fixture-was-blessed).

Intentional behaviour changes must regenerate the fixture via the CLI and
review the diff (see docs/performance.md for the blessing workflow)::

    PYTHONPATH=src python -m repro bless-golden

The run parameters and the generator live in :mod:`repro.sim.golden`, so
the test and the blessing command can never disagree about what a golden
run is.
"""

import json
import os

import pytest

from repro.sim import golden
from repro.sim.presets import PRESET_BUILDERS

FIXTURE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "golden_counters.json"
)


def _load_fixture() -> dict:
    with open(FIXTURE, encoding="utf-8") as fh:
        return json.load(fh)


def test_fixture_covers_every_preset():
    golden_data = _load_fixture()["counters"]
    assert sorted(golden_data) == sorted(PRESET_BUILDERS), (
        "preset list changed: regenerate the fixture "
        "(PYTHONPATH=src python -m repro bless-golden)"
    )


def test_module_and_fixture_parameters_agree():
    data = _load_fixture()
    assert data["workload"] == golden.WORKLOAD
    assert data["instructions"] == golden.INSTRUCTIONS
    assert data["seed"] == golden.SEED


def test_blessed_path_is_this_fixture():
    assert os.path.samefile(os.path.dirname(FIXTURE),
                            golden.FIXTURE_PATH.parent)
    assert golden.FIXTURE_PATH.name == os.path.basename(FIXTURE)


@pytest.mark.parametrize("preset", sorted(PRESET_BUILDERS))
def test_counters_match_golden(preset):
    expected = _load_fixture()["counters"][preset]
    current = golden.golden_counters(preset)
    assert current == expected, (
        f"{preset}: measured counters diverged from the blessed fixture; "
        "if intentional, regenerate with `python -m repro bless-golden` "
        "and review the diff"
    )


if __name__ == "__main__":
    print(f"wrote {golden.bless(FIXTURE)}")
