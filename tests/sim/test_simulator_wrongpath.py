"""Wrong-path behaviour observed through full simulations."""

import pytest

from repro.common.config import SimConfig
from repro.sim.simulator import Simulator
from repro.workloads import micro
from repro.workloads.synth import synthesize
from repro.workloads.profiles import get_profile


def run_sim(program, instructions=4_000, warmup=400, **kwargs):
    config = SimConfig(
        max_instructions=instructions,
        functional_warmup_blocks=warmup,
        **kwargs,
    )
    sim = Simulator(program, config)
    sim.run()
    return sim


@pytest.fixture(scope="module")
def xgb_sim():
    return run_sim(synthesize(get_profile("xgboost"), 1), instructions=6_000,
                   warmup=3_000)


def test_off_path_prefetches_occur(xgb_sim):
    assert xgb_sim.counters["prefetches_emitted_off_path"] > 0


def test_off_path_demand_misses_pollute(xgb_sim):
    """Wrong-path demand fetches really access (and fill) the icache."""
    assert xgb_sim.counters["icache_demand_misses_off_path"] > 0


def test_off_path_blocks_generated(xgb_sim):
    assert xgb_sim.counters["ftq_blocks_off_path"] > 0
    assert xgb_sim.counters["ftq_blocks_on_path"] > 0


def test_squashes_happened(xgb_sim):
    assert xgb_sim.counters["backend_squashed_uops"] > 0


def test_divergences_resolve(xgb_sim):
    c = xgb_sim.counters
    divergences = sum(
        c[f"divergence_{cause}"]
        for cause in ("cond_mispredict", "btb_miss", "indirect_mispredict",
                      "ras_mispredict")
    )
    # At most one divergence may still be in flight at the end of the run.
    assert 0 <= divergences - c["resteers"] <= 1


def test_decode_resteers_cheaper_than_execute():
    """Post-fetch-corrected BTB misses recover faster than mispredicts."""
    import dataclasses

    program = synthesize(get_profile("gcc"), 1)
    with_pfc = run_sim(program, warmup=2_000)
    config = SimConfig(max_instructions=4_000, functional_warmup_blocks=2_000)
    no_pfc_cfg = config.replace(
        frontend=dataclasses.replace(config.frontend, post_fetch_correction=False)
    )
    no_pfc = Simulator(synthesize(get_profile("gcc"), 1), no_pfc_cfg)
    no_pfc.run()
    # Without PFC every BTB-miss divergence resolves at execute.
    assert no_pfc.counters["resteer_at_decode"] == 0
    assert with_pfc.counters["resteer_at_decode"] > 0
    ipc_pfc = with_pfc.backend.retired_instructions / with_pfc.cycle
    ipc_no = no_pfc.backend.retired_instructions / no_pfc.cycle
    assert ipc_pfc >= ipc_no * 0.98  # PFC should not hurt


def test_useful_off_path_prefetch_exists():
    """Merge points make some off-path prefetches useful (Fig 7)."""
    sim = run_sim(synthesize(get_profile("mongodb"), 1), instructions=8_000,
                  warmup=3_000)
    assert sim.counters["prefetch_useful_off_path"] > 0


def test_mispredict_heavy_program_spends_cycles_squashed():
    clean = run_sim(micro.counted_loop(8))
    messy = run_sim(micro.mispredicting_loop())
    clean_ratio = clean.counters["backend_squashed_uops"] / clean.cycle
    messy_ratio = messy.counters["backend_squashed_uops"] / messy.cycle
    assert messy_ratio > clean_ratio
