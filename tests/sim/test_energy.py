"""Energy/traffic accounting."""

from repro.sim.energy import EnergyModel, EnergyReport, efficiency_comparison, energy_report
from repro.sim.metrics import SimResult


def make_result(**counters):
    counters.setdefault("cycles", 1000)
    counters.setdefault("retired_instructions", 1000)
    return SimResult("w", "c", counters=counters)


def test_empty_run_costs_nothing():
    report = energy_report(make_result())
    assert report.total_pj == 0.0
    assert report.offchip_bytes == 0


def test_dram_dominates():
    report = energy_report(make_result(dram_ifetch_fills=10, l1d_accesses=10))
    assert report.per_component_pj["dram"] > report.per_component_pj["l1d"]


def test_offchip_traffic_in_bytes():
    report = energy_report(make_result(dram_ifetch_fills=3, dram_data_fills=2))
    assert report.offchip_bytes == 5 * 64


def test_per_instruction_normalization():
    report = energy_report(
        make_result(retired_instructions=2000, dispatched_instructions=2000)
    )
    assert report.pj_per_instruction == 18.0  # base uop energy


def test_offchip_bytes_per_kinstr():
    report = energy_report(
        make_result(retired_instructions=2000, dram_data_fills=10)
    )
    assert report.offchip_bytes_per_kinstr == 10 * 64 / 2


def test_custom_model():
    model = EnergyModel(dram_access_pj=1.0)
    report = energy_report(make_result(dram_ifetch_fills=5), model)
    assert report.per_component_pj["dram"] == 5.0


def test_udp_filter_energy_counted():
    report = energy_report(make_result(udp_drop_off_path=10, udp_emit_off_path=5))
    assert report.per_component_pj["udp_filters"] == 2.0 * 3 * 15


def test_efficiency_comparison_directions():
    base = make_result(
        prefetches_emitted=100, dram_ifetch_fills=50, dispatched_instructions=1200
    )
    technique = make_result(
        prefetches_emitted=60, dram_ifetch_fills=30, dispatched_instructions=1100
    )
    deltas = efficiency_comparison(base, technique)
    assert deltas["prefetches_emitted_pct"] == -40.0
    assert deltas["offchip_traffic_pct"] < 0
    assert deltas["energy_per_instruction_pct"] < 0


def test_efficiency_comparison_zero_baseline():
    deltas = efficiency_comparison(make_result(), make_result())
    assert deltas["ipc_pct"] == 0.0
