"""Idle-cycle fast-forward: equivalence with the naive stepper, plus smoke.

The fast-forward path (``Simulator._try_fast_forward``) must be a pure
wall-clock optimization: for any (workload, preset) pair the final cycle
count and every measured counter must be byte-identical to stepping one
cycle at a time.  These tests are the enforcement of that contract; the
naive stepper stays in the tree (``REPRO_NO_FASTFORWARD`` /
``fast_forward_enabled = False``) precisely so it can serve as the oracle.
"""

import pytest

from repro.sim.presets import PRESET_BUILDERS
from repro.sim.profile import build_simulator

N = 4_000


def _run(workload: str, preset: str, n: int, fast: bool):
    config = PRESET_BUILDERS[preset](n)
    simulator = build_simulator(workload, config)
    simulator.fast_forward_enabled = fast
    simulator.run()
    return simulator


@pytest.mark.parametrize("preset", sorted(PRESET_BUILDERS))
def test_fastforward_counters_identical(preset):
    fast = _run("gcc", preset, N, fast=True)
    naive = _run("gcc", preset, N, fast=False)
    assert fast.cycle == naive.cycle
    assert fast.measured_counters() == naive.measured_counters()


@pytest.mark.parametrize("workload", ["verilator", "xgboost"])
def test_fastforward_counters_identical_stress_workloads(workload):
    # The two pathological frontends from the paper, on the preset built to
    # maximize skippable stall cycles.
    fast = _run(workload, "miss-heavy", N, fast=True)
    naive = _run(workload, "miss-heavy", N, fast=False)
    assert fast.cycle == naive.cycle
    assert fast.measured_counters() == naive.measured_counters()


def test_fastforward_skips_cycles_on_miss_heavy():
    """Deterministic perf smoke: count step() bodies, not wall-clock.

    On the DRAM-bound preset the overwhelming majority of cycles are pure
    icache-miss stalls, so the fast-forward stepper must reach the retire
    target in far fewer step() invocations than there are cycles.
    """
    fast = _run("verilator", "miss-heavy", N, fast=True)
    assert fast.ff_jumps > 0
    assert fast.ff_cycles_skipped > 0
    assert fast.steps_executed + fast.ff_cycles_skipped == fast.cycle
    # The structural win: most cycles were skipped, not stepped.
    assert fast.steps_executed < fast.cycle // 2


def test_naive_stepper_steps_every_cycle():
    naive = _run("verilator", "miss-heavy", N, fast=False)
    assert naive.ff_jumps == 0
    assert naive.ff_cycles_skipped == 0
    assert naive.steps_executed == naive.cycle


def test_env_var_disables_fastforward(monkeypatch):
    monkeypatch.setenv("REPRO_NO_FASTFORWARD", "1")
    config = PRESET_BUILDERS["miss-heavy"](N)
    simulator = build_simulator("gcc", config)
    assert not simulator.fast_forward_enabled
