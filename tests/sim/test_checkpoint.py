"""Warmup checkpoint + program store equivalence: byte-identical or bust.

Style of ``tests/sim/test_fastforward.py``: for every preset, a simulator
restored from a captured warmup snapshot must produce ``measured_counters()``
equal to one that ran the functional warmup itself, and a simulator built
from a pickled-and-rehydrated program must match one built from the
original.  Plus the failure modes: corrupt blobs, mismatched configs, and
the ``REPRO_NO_CHECKPOINT`` opt-out.
"""

import pickle

import pytest

from repro.sim import checkpoint as ckpt
from repro.sim.presets import PRESET_BUILDERS, baseline_config, miss_heavy_config
from repro.sim.simulator import Simulator
from repro.workloads import store as program_store
from repro.workloads.profiles import get_profile

INSTRUCTIONS = 3_000
SEED = 1


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CHECKPOINT", raising=False)


def _scratch_and_restored(workload: str, config) -> tuple[dict, dict]:
    """Counters from a from-scratch run and from a capture/restore run."""
    prof = get_profile(workload)
    program = program_store.program_for(workload, SEED)

    scratch = Simulator(program, config, data_profile=prof.data)
    scratch.functional_warmup(config.functional_warmup_blocks)
    blob = ckpt.capture_warmup(scratch)
    scratch.run()

    restored = Simulator(program, config, data_profile=prof.data)
    ckpt.restore_warmup(restored, blob)
    restored.run()
    return scratch.measured_counters(), restored.measured_counters()


@pytest.mark.parametrize("preset", sorted(PRESET_BUILDERS))
def test_restore_matches_scratch_per_preset(preset):
    config = PRESET_BUILDERS[preset](INSTRUCTIONS, SEED)
    scratch, restored = _scratch_and_restored("gcc", config)
    assert scratch == restored


@pytest.mark.parametrize("workload", ["verilator", "xgboost"])
def test_restore_matches_scratch_miss_heavy_stress(workload):
    scratch, restored = _scratch_and_restored(
        workload, miss_heavy_config(4_000, SEED)
    )
    assert scratch == restored


def test_restored_state_is_independent_of_the_donor():
    """Running the donor must not bleed into a later restore of its blob."""
    config = PRESET_BUILDERS["udp"](INSTRUCTIONS, SEED)
    prof = get_profile("gcc")
    program = program_store.program_for("gcc", SEED)

    donor = Simulator(program, config, data_profile=prof.data)
    donor.functional_warmup(config.functional_warmup_blocks)
    blob = ckpt.capture_warmup(donor)
    donor.run()  # mutates the donor's live structures after capture

    first = Simulator(program, config, data_profile=prof.data)
    ckpt.restore_warmup(first, blob)
    first.run()
    second = Simulator(program, config, data_profile=prof.data)
    ckpt.restore_warmup(second, blob)
    second.run()
    assert donor.measured_counters() == first.measured_counters()
    assert first.measured_counters() == second.measured_counters()


def test_program_pickle_roundtrip_is_byte_identical():
    config = baseline_config(INSTRUCTIONS, SEED)
    prof = get_profile("gcc")
    original = program_store.program_for("gcc", SEED)
    rehydrated = pickle.loads(pickle.dumps(original, pickle.HIGHEST_PROTOCOL))

    a = Simulator(original, config, data_profile=prof.data)
    a.run()
    b = Simulator(rehydrated, config, data_profile=prof.data)
    b.run()
    assert a.measured_counters() == b.measured_counters()


def test_program_store_disk_hydration_matches_build(tmp_path):
    store = program_store.ProgramStore(tmp_path / "programs")
    built = program_store.program_for("mysql", SEED)
    store.store("mysql", SEED, built)
    loaded = store.load("mysql", SEED)
    assert loaded is not built

    config = baseline_config(INSTRUCTIONS, SEED)
    prof = get_profile("mysql")
    a = Simulator(built, config, data_profile=prof.data)
    a.run()
    b = Simulator(loaded, config, data_profile=prof.data)
    b.run()
    assert a.measured_counters() == b.measured_counters()


def test_program_store_corrupt_pickle_is_a_miss(tmp_path):
    store = program_store.ProgramStore(tmp_path / "programs")
    path = store.path_for("gcc", SEED)
    path.parent.mkdir(parents=True)
    path.write_bytes(b"not a pickle")
    assert store.load("gcc", SEED) is None


def test_checkpoint_store_disk_roundtrip(tmp_path):
    store = ckpt.CheckpointStore(tmp_path / "ckpt")
    key = "f" * 64
    assert store.get(key) is None
    assert not store.exists(key)
    store.put(key, b"snapshot-bytes")
    assert store.exists(key)
    assert store.get(key) == b"snapshot-bytes"
    # And via a fresh store instance with the blob memo cleared (pure disk).
    ckpt._BLOB_MEMO.clear()
    assert ckpt.CheckpointStore(tmp_path / "ckpt").get(key) == b"snapshot-bytes"


def test_restore_rejects_corrupt_blob():
    config = baseline_config(INSTRUCTIONS, SEED)
    prof = get_profile("gcc")
    sim = Simulator(
        program_store.program_for("gcc", SEED), config, data_profile=prof.data
    )
    with pytest.raises(ckpt.CheckpointError):
        ckpt.restore_warmup(sim, b"garbage")


def test_restore_rejects_wrong_geometry():
    prof = get_profile("gcc")
    program = program_store.program_for("gcc", SEED)
    small = baseline_config(INSTRUCTIONS, SEED)
    donor = Simulator(program, small, data_profile=prof.data)
    donor.functional_warmup(small.functional_warmup_blocks)
    blob = ckpt.capture_warmup(donor)

    grown = small.with_l1i_size(small.memory.l1i.size_bytes * 2)
    target = Simulator(program, grown, data_profile=prof.data)
    with pytest.raises(ckpt.CheckpointError):
        ckpt.restore_warmup(target, blob)


def test_capture_requires_warmed_restore_requires_pristine():
    config = baseline_config(INSTRUCTIONS, SEED)
    prof = get_profile("gcc")
    program = program_store.program_for("gcc", SEED)

    pristine = Simulator(program, config, data_profile=prof.data)
    with pytest.raises(ckpt.CheckpointError):
        ckpt.capture_warmup(pristine)

    warmed = Simulator(program, config, data_profile=prof.data)
    warmed.functional_warmup(config.functional_warmup_blocks)
    blob = ckpt.capture_warmup(warmed)
    with pytest.raises(ckpt.CheckpointError):
        ckpt.restore_warmup(warmed, blob)  # already warmed


def test_no_checkpoint_env_disables_reuse(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CHECKPOINT", "1")
    assert not ckpt.checkpointing_enabled()
    program_store.clear_memo()
    program, source = program_store.get_program("gcc", SEED)
    assert source == "built"
    # Nothing was persisted: a fresh store sees no entry.
    assert program_store.ProgramStore().stats() == (0, 0)


def test_get_program_source_progression(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "fresh"))
    program_store.clear_memo()
    _, first = program_store.get_program("gcc", SEED)
    assert first == "built"
    _, second = program_store.get_program("gcc", SEED)
    assert second == "memo"
    program_store.clear_memo()
    _, third = program_store.get_program("gcc", SEED)
    assert third == "disk"
