"""Profiling harness: stage attribution and fast-forward jump statistics."""

from repro.sim.presets import baseline_config, miss_heavy_config
from repro.sim.profile import format_report, profile_run

FAST = baseline_config(max_instructions=2_000).replace(
    functional_warmup_blocks=800
)


def test_profile_reports_fast_forward_jumps():
    config = miss_heavy_config(max_instructions=1_500).replace(
        functional_warmup_blocks=600
    )
    report = profile_run("mediawiki", config, config_name="miss-heavy")
    assert report.fast_forward
    # The stall-dominated preset must actually take jumps, and the average
    # must be consistent with the totals.
    assert report.ff_jumps > 0
    assert report.ff_cycles_skipped > 0
    assert report.avg_ff_jump_cycles == (
        report.ff_cycles_skipped / report.ff_jumps
    )
    text = format_report(report)
    assert f"{report.ff_jumps} jumps" in text
    assert "cycles/jump" in text


def test_profile_without_fast_forward_reports_zero_jumps():
    report = profile_run(
        "mediawiki", FAST, config_name="baseline", fast_forward=False
    )
    assert not report.fast_forward
    assert report.ff_jumps == 0
    assert report.avg_ff_jump_cycles == 0.0
    assert "(0 jumps, avg 0.0 cycles/jump)" in format_report(report)


def test_profile_stage_breakdown_covers_step():
    report = profile_run("mediawiki", FAST, config_name="baseline")
    assert report.retired_instructions >= FAST.max_instructions
    assert {s.name for s in report.stages} == {
        "fills", "backend", "fetch/decode", "fdip-scan", "generate",
    }
    assert report.step_overhead_seconds >= 0.0
    assert report.as_dict()["ff_jumps"] == report.ff_jumps
