"""Parallel experiment engine: pool determinism, disk cache, progress.

The autouse fixture pins ``REPRO_JOBS=2`` for this module so the tier-1
pytest invocation always exercises the process-pool path, and isolates the
disk cache in a per-test temporary directory.
"""

import dataclasses
import json

import pytest

from repro.sim import engine
from repro.sim.engine import BatchStats, ResultCache, RunSpec, run_batch, spec_for
from repro.sim.metrics import SimResult
from repro.sim.presets import baseline_config
from repro.sim.runner import run_workload
from repro.workloads import micro

FAST = baseline_config(max_instructions=2_000).replace(
    functional_warmup_blocks=800
)


@pytest.fixture(autouse=True)
def _engine_env(monkeypatch, tmp_path):
    monkeypatch.setenv(engine.JOBS_ENV, "2")
    monkeypatch.setenv(engine.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.delenv(engine.NO_CACHE_ENV, raising=False)
    monkeypatch.delenv("REPRO_NO_CHECKPOINT", raising=False)


def _specs():
    return [
        spec_for("mediawiki", FAST.with_ftq_depth(16), 1, "ftq16"),
        spec_for("mediawiki", FAST.with_ftq_depth(32), 1, "ftq32"),
        spec_for("mediawiki", FAST.with_ftq_depth(16), 2, "ftq16-s2"),
    ]


def _serialized(results):
    return [json.dumps(r.to_dict(), sort_keys=True) for r in results]


def test_runspec_is_frozen():
    spec = _specs()[0]
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.seed = 3


def test_resolve_jobs_env_and_override(monkeypatch):
    assert engine.resolve_jobs() == 2  # from REPRO_JOBS in the fixture
    assert engine.resolve_jobs(5) == 5
    # Nonsense worker counts must be rejected loudly, naming their source,
    # instead of reaching ProcessPoolExecutor.
    with pytest.raises(ValueError, match="jobs argument"):
        engine.resolve_jobs(0)
    with pytest.raises(ValueError, match="must be >= 1"):
        engine.resolve_jobs(-3)
    monkeypatch.setenv(engine.JOBS_ENV, "0")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        engine.resolve_jobs()
    monkeypatch.setenv(engine.JOBS_ENV, "not-a-number")
    with pytest.raises(ValueError, match="must be an integer"):
        engine.resolve_jobs()
    monkeypatch.setenv(engine.JOBS_ENV, "")
    assert engine.resolve_jobs() >= 1  # empty env falls back to cpu_count


def test_pool_matches_in_process_byte_identical():
    serial = run_batch(_specs(), jobs=1, no_cache=True)
    pooled = run_batch(_specs(), jobs=2, no_cache=True)
    assert _serialized(serial) == _serialized(pooled)


def test_results_follow_spec_order():
    results = run_batch(_specs(), jobs=2, no_cache=True)
    assert [r.config_name for r in results] == ["ftq16", "ftq32", "ftq16-s2"]
    assert all(r.workload == "mediawiki" for r in results)
    assert results[0].ipc > 0


def test_warm_cache_rerun_simulates_nothing(tmp_path):
    cache = ResultCache(tmp_path / "explicit")
    cold = BatchStats()
    first = run_batch(_specs(), cache=cache, progress=cold)
    assert cold.simulated == 3 and cold.cache_hits == 0
    warm = BatchStats()
    second = run_batch(_specs(), cache=cache, progress=warm)
    assert warm.simulated == 0 and warm.cache_hits == 3
    assert _serialized(first) == _serialized(second)


def test_corrupted_cache_file_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "corrupt")
    spec = _specs()[0]
    run_batch([spec], cache=cache)
    path = cache.path_for(spec)
    assert path.is_file()
    path.write_text("{ not json !!", encoding="utf-8")
    assert cache.get(spec) is None
    stats = BatchStats()
    results = run_batch([spec], cache=cache, progress=stats)
    assert stats.simulated == 1 and stats.cache_hits == 0
    assert results[0].ipc > 0
    # The bad file was rewritten; the next read hits again.
    assert cache.get(spec) is not None


def test_cache_hit_restamps_label(tmp_path):
    cache = ResultCache(tmp_path / "labels")
    spec = _specs()[0]
    run_batch([spec], cache=cache)
    relabeled = dataclasses.replace(spec, label="base-ftq16")
    stats = BatchStats()
    (result,) = run_batch([relabeled], cache=cache, progress=stats)
    assert stats.cache_hits == 1
    assert result.config_name == "base-ftq16"


def test_no_cache_env_disables_cache(monkeypatch, tmp_path):
    monkeypatch.setenv(engine.NO_CACHE_ENV, "1")
    cache = ResultCache(tmp_path / "disabled")
    run_batch([_specs()[0]], cache=cache)
    assert cache.info().entries == 0


def test_cache_info_and_clear(tmp_path):
    cache = ResultCache(tmp_path / "maint")
    run_batch(_specs()[:2], cache=cache)
    info = cache.info()
    assert info.entries == 2 and info.size_bytes > 0
    assert cache.clear() == 2
    assert cache.info().entries == 0


def test_explicit_program_specs_run_but_do_not_cache(tmp_path):
    cache = ResultCache(tmp_path / "programs")
    spec = RunSpec(
        workload="micro", config=FAST, label="loop",
        program=micro.mispredicting_loop(),
    )
    assert not spec.cacheable
    stats = BatchStats()
    (result,) = run_batch([spec], cache=cache, progress=stats)
    assert result.workload == "micro" and result.config_name == "loop"
    assert result.ipc > 0
    assert stats.simulated == 1
    assert cache.info().entries == 0


def test_legacy_wrapper_matches_engine():
    via_wrapper = run_workload("mediawiki", FAST, config_name="ftq32")
    (via_engine,) = run_batch([spec_for("mediawiki", FAST, 1, "ftq32")])
    assert json.dumps(via_wrapper.to_dict(), sort_keys=True) == json.dumps(
        via_engine.to_dict(), sort_keys=True
    )


def test_simresult_dict_round_trip():
    (result,) = run_batch([_specs()[0]], no_cache=True, jobs=1)
    clone = SimResult.from_dict(result.to_dict())
    assert clone == result
    assert clone.to_dict() == result.to_dict()
    with pytest.raises((KeyError, TypeError)):
        SimResult.from_dict({"workload": "x"})


def test_progress_events_are_complete():
    events = []
    run_batch(_specs(), jobs=2, no_cache=True, progress=events.append)
    assert len(events) == 3
    assert sorted(e.index for e in events) == [0, 1, 2]
    assert [e.completed for e in events] == [1, 2, 3]
    assert all(e.total == 3 and not e.cached and e.seconds >= 0 for e in events)


def test_default_progress_hook(tmp_path):
    stats = BatchStats()
    previous = engine.set_default_progress(stats)
    try:
        run_batch([_specs()[0]], no_cache=True, jobs=1)
    finally:
        engine.set_default_progress(previous)
    assert stats.runs == 1 and stats.simulated == 1
    assert "1 simulated" in stats.summary()


# ---------------------------------------------------------------------------
# Warmup checkpointing + program store (the sweep-reuse layers)
# ---------------------------------------------------------------------------


def test_serial_batch_creates_one_checkpoint_per_key():
    # _specs() spans two checkpoint keys: (mediawiki, seed 1) twice at
    # different FTQ depths (shared warmup), and (mediawiki, seed 2) once.
    stats = BatchStats()
    run_batch(_specs(), jobs=1, no_cache=True, progress=stats)
    assert stats.checkpoint_creates == 2
    assert stats.checkpoint_restores == 1
    rerun = BatchStats()
    run_batch(_specs(), jobs=1, no_cache=True, progress=rerun)
    assert rerun.checkpoint_creates == 0
    assert rerun.checkpoint_restores == 3
    assert "3 warmups restored" in rerun.summary()


def test_pooled_cold_batch_creates_one_checkpoint_per_key():
    stats = BatchStats()
    pooled = run_batch(_specs(), jobs=2, no_cache=True, progress=stats)
    assert stats.checkpoint_creates == 2
    assert stats.checkpoint_restores == 1
    serial = run_batch(_specs(), jobs=1, no_cache=True)
    assert _serialized(pooled) == _serialized(serial)


def test_checkpointed_batch_matches_no_checkpoint_batch(monkeypatch):
    checkpointed = run_batch(_specs(), jobs=1, no_cache=True)
    monkeypatch.setenv("REPRO_NO_CHECKPOINT", "1")
    stats = BatchStats()
    scratch = run_batch(_specs(), jobs=1, no_cache=True, progress=stats)
    assert stats.checkpoint_creates == 0 and stats.checkpoint_restores == 0
    assert _serialized(checkpointed) == _serialized(scratch)


def test_corrupt_checkpoint_file_falls_back_to_scratch():
    from repro.sim import checkpoint as ckpt

    spec = _specs()[0]
    reference = run_batch([spec], jobs=1, no_cache=True)
    key = engine._checkpoint_key_for(spec)
    store = ckpt.CheckpointStore()
    assert store.exists(key)
    store.path_for(key).write_bytes(b"corrupt snapshot")
    ckpt._BLOB_MEMO.clear()
    stats = BatchStats()
    rerun = run_batch([spec], jobs=1, no_cache=True, progress=stats)
    assert stats.checkpoint_creates == 1  # rebuilt and re-persisted
    assert _serialized(reference) == _serialized(rerun)
    ckpt._BLOB_MEMO.clear()
    assert store.get(key) != b"corrupt snapshot"


def test_progress_events_carry_reuse_metadata():
    events = []
    run_batch(_specs(), jobs=1, no_cache=True, progress=events.append)
    assert {e.checkpoint for e in events} == {"created", "restored"}
    assert all(
        e.program_source in ("memo", "disk", "built") for e in events
    )
    restored = [e for e in events if e.checkpoint == "restored"]
    assert all(e.warmup_seconds >= 0 for e in restored)


def test_cache_info_reports_per_class(tmp_path, monkeypatch):
    monkeypatch.setenv(engine.CACHE_DIR_ENV, str(tmp_path / "classes"))
    cache = ResultCache()
    run_batch(_specs()[:2], cache=cache)
    info = cache.info()
    assert info.entries == 2 and info.size_bytes > 0
    assert info.programs == 1 and info.program_bytes > 0
    assert info.checkpoints == 1 and info.checkpoint_bytes > 0


# ---------------------------------------------------------------------------
# Scheduler robustness: a checkpoint leader dying must not strand followers
# ---------------------------------------------------------------------------

_REAL_EXECUTE = engine._execute


def _exploding_execute(spec):
    if spec.label == "boom":
        raise RuntimeError("injected leader failure")
    return _REAL_EXECUTE(spec)


def test_pool_leader_failure_releases_followers(monkeypatch):
    # All three specs share one warmup checkpoint key; the first submitted
    # unit claims it (the leader) and dies before the checkpoint lands.  The
    # parked followers must be released to create the state themselves — the
    # batch raises BatchError only after the pool drains, with every
    # surviving spec finished (no deadlock, no lost results).
    monkeypatch.setattr(engine, "_execute", _exploding_execute)
    specs = [
        spec_for("mediawiki", FAST.with_ftq_depth(16), 1, "boom"),
        spec_for("mediawiki", FAST.with_ftq_depth(32), 1, "ftq32"),
        spec_for("mediawiki", FAST.with_ftq_depth(16), 1, "ftq16"),
    ]
    events = []
    with pytest.raises(engine.BatchError, match="injected leader failure") as info:
        run_batch(
            specs, jobs=2, no_cache=True, progress=events.append, retries=0
        )
    assert [f.label for f in info.value.failures] == ["boom"]
    assert info.value.failures[0].kind == "error"
    assert info.value.completed == 2
    survivors = [e for e in events if e.error is None]
    assert {e.spec.label for e in survivors} == {"ftq32", "ftq16"}
    assert all(not e.cached and e.result.ipc > 0 for e in survivors)
    failed = [e for e in events if e.error is not None]
    assert [e.spec.label for e in failed] == ["boom"]
    assert failed[0].result is None and failed[0].failure_kind == "error"


def test_cache_clear_accepts_class_filter(tmp_path, monkeypatch):
    monkeypatch.setenv(engine.CACHE_DIR_ENV, str(tmp_path / "classes"))
    cache = ResultCache()
    run_batch(_specs()[:2], cache=cache)
    assert cache.clear(("checkpoints",)) == 1
    info = cache.info()
    assert info.checkpoints == 0 and info.entries == 2 and info.programs == 1
    assert cache.clear(("results", "programs", "checkpoints")) == 3
    after = cache.info()
    assert (after.entries, after.programs, after.checkpoints) == (0, 0, 0)
    with pytest.raises(ValueError):
        cache.clear(("everything",))
