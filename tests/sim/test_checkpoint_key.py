"""Warmup checkpoint key derivation: exactly the warmup-affecting subset.

The whole point of functional-warmup checkpointing is that an FTQ-depth
sweep (or any sweep over measured-region-only knobs) shares ONE checkpoint.
These tests pin the key derivation from both sides:

* knobs that cannot influence warmed state (FTQ depth, perfect-icache,
  instruction budget, UFTQ mode, prefetcher selection, core widths) must
  NOT change the key;
* knobs that do shape warmed state (warmup length, icache/L2 geometry,
  BTB capacity, history lengths, UDP sizing) MUST change it.
"""

import dataclasses

from repro.common.config import SimConfig, TechniqueConfig, UFTQConfig
from repro.sim.checkpoint import (
    WARMUP_CONFIG_FIELDS,
    checkpoint_key,
    warmup_config_subset,
)

PROGRAM_KEY = "a" * 64


def _key(config: SimConfig, seed: int = 1, program_key: str = PROGRAM_KEY) -> str:
    return checkpoint_key(program_key, seed, config)


def base() -> SimConfig:
    return SimConfig(max_instructions=10_000, seed=1)


# ---------------------------------------------------------------------------
# Measured-region knobs must share a checkpoint
# ---------------------------------------------------------------------------


def test_ftq_depth_does_not_change_key():
    keys = {_key(base().with_ftq_depth(depth)) for depth in (8, 16, 32, 64, 96)}
    assert len(keys) == 1


def test_perfect_icache_does_not_change_key():
    assert _key(base()) == _key(base().with_perfect_icache())


def test_instruction_budget_does_not_change_key():
    assert _key(base()) == _key(base().replace(max_instructions=99_999))


def test_uftq_mode_does_not_change_key():
    assert _key(base()) == _key(base().replace(uftq=UFTQConfig(mode="atr-aur")))


def test_prefetcher_kind_does_not_change_key():
    keys = {
        _key(base().replace(prefetcher=TechniqueConfig(kind=kind)))
        for kind in ("fdip", "none", "mana", "shadow-btb")
    }
    assert keys == {_key(base())}


def test_core_width_does_not_change_key():
    wide = base().replace(
        core=dataclasses.replace(base().core, rob_entries=base().core.rob_entries * 2)
    )
    assert _key(base()) == _key(wide)


# ---------------------------------------------------------------------------
# Warmup-affecting knobs must NOT share a checkpoint
# ---------------------------------------------------------------------------


def test_warmup_length_changes_key():
    shorter = base().replace(
        functional_warmup_blocks=base().functional_warmup_blocks // 2
    )
    assert _key(base()) != _key(shorter)


def test_l1i_geometry_changes_key():
    grown = base().with_l1i_size(base().memory.l1i.size_bytes * 2)
    assert _key(base()) != _key(grown)


def test_btb_capacity_changes_key():
    assert _key(base()) != _key(base().with_btb_entries(2048))


def test_udp_enablement_changes_key():
    udp_on = base().replace(udp=dataclasses.replace(base().udp, enabled=True))
    assert _key(base()) != _key(udp_on)


# ---------------------------------------------------------------------------
# Identity inputs
# ---------------------------------------------------------------------------


def test_seed_changes_key():
    assert _key(base(), seed=1) != _key(base(), seed=2)


def test_program_digest_changes_key():
    assert _key(base(), program_key="b" * 64) != _key(base())


# ---------------------------------------------------------------------------
# The subset itself
# ---------------------------------------------------------------------------


def test_subset_covers_exactly_the_documented_fields():
    subset = warmup_config_subset(base())
    assert sorted(subset) == sorted(WARMUP_CONFIG_FIELDS)


def test_subset_is_json_canonicalizable():
    import json

    json.dumps(warmup_config_subset(base()), sort_keys=True)
