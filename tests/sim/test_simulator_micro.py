"""Simulator behaviour on handcrafted micro programs (exactly analyzable)."""

import dataclasses

import pytest

from repro.common.config import SimConfig, UDPConfig
from repro.sim.simulator import Simulator
from repro.workloads import micro


def run_micro(program, instructions=3_000, warmup_blocks=300, **config_overrides):
    config = SimConfig(
        max_instructions=instructions,
        functional_warmup_blocks=warmup_blocks,
        **config_overrides,
    )
    sim = Simulator(program, config)
    sim.run()
    return sim


def test_straight_loop_high_ipc():
    """A tiny resident loop with one predictable branch approaches peak IPC."""
    sim = run_micro(micro.straight_loop(body_instrs=8))
    ipc = sim.backend.retired_instructions / sim.cycle
    assert ipc > 2.0


def test_retires_exactly_target():
    sim = run_micro(micro.straight_loop(), instructions=2_500)
    assert sim.backend.retired_instructions >= 2_500
    assert sim.backend.retired_instructions < 2_500 + 16


def test_no_wrong_path_retirement():
    sim = run_micro(micro.mispredicting_loop())
    assert sim.counters["wrong_path_retired"] == 0


def test_mispredicting_loop_slower_than_predictable():
    predictable = run_micro(micro.counted_loop(trip_count=8))
    random_branch = run_micro(micro.mispredicting_loop())
    ipc_p = predictable.backend.retired_instructions / predictable.cycle
    ipc_r = random_branch.backend.retired_instructions / random_branch.cycle
    assert ipc_p > ipc_r * 1.2
    assert random_branch.counters["resteers"] > predictable.counters["resteers"]


def test_resteer_causes_recorded():
    sim = run_micro(micro.mispredicting_loop())
    assert sim.counters["resteer_cond_mispredict"] > 0
    assert sim.counters["resteers"] >= sim.counters["resteer_cond_mispredict"]


def test_perfect_icache_at_least_as_fast():
    program = micro.long_straight(num_blocks=2048, block_instrs=8)
    base = run_micro(program, warmup_blocks=0)
    perfect_config = dataclasses.replace(
        SimConfig(max_instructions=3_000, functional_warmup_blocks=0).frontend,
        perfect_icache=True,
    )
    perfect = Simulator(
        program,
        SimConfig(max_instructions=3_000, functional_warmup_blocks=0,
                  ).replace(frontend=perfect_config),
    )
    perfect.run()
    ipc_base = base.backend.retired_instructions / base.cycle
    ipc_perfect = perfect.backend.retired_instructions / perfect.cycle
    assert ipc_perfect >= ipc_base * 0.98


def test_cold_straight_code_misses_then_prefetches():
    """A big cold straight-line region exercises FDIP's sequential coverage."""
    program = micro.long_straight(num_blocks=4096, block_instrs=8)
    sim = run_micro(program, instructions=6_000, warmup_blocks=0)
    assert sim.counters["prefetches_emitted"] > 0
    assert sim.counters["icache_demand_misses"] > 0


def test_functional_warmup_fills_btb():
    program = micro.counted_loop(trip_count=8)
    config = SimConfig(max_instructions=1_000, functional_warmup_blocks=100)
    sim = Simulator(program, config)
    sim.functional_warmup(100)
    # The loop's branches are in the BTB before timing starts.
    for block in program.blocks:
        if block.branch is not None:
            assert sim.bpu.btb.contains(block.branch.pc)
    sim.run()
    assert sim.backend.retired_instructions >= 1_000


def test_warmup_counters_excluded_from_measurement():
    program = micro.straight_loop()
    sim = run_micro(program, instructions=1_000, warmup_blocks=500)
    measured = sim.measured_counters()
    assert measured["retired_instructions"] >= 1_000
    assert measured["cycles"] == sim.cycle  # functional warmup takes 0 cycles


def test_double_functional_warmup_rejected():
    from repro.common.errors import SimulationError

    program = micro.straight_loop()
    sim = Simulator(program, SimConfig(max_instructions=100,
                                       functional_warmup_blocks=0))
    sim.run()
    with pytest.raises(SimulationError):
        sim.functional_warmup(10)


def test_udp_runs_on_micro_program():
    program = micro.mispredicting_loop()
    sim = run_micro(program, udp=UDPConfig(enabled=True))
    assert sim.udp is not None
    assert sim.backend.retired_instructions >= 3_000


def test_call_return_program_completes():
    sim = run_micro(micro.call_return())
    assert sim.counters["wrong_path_retired"] == 0
    assert sim.backend.retired_instructions >= 3_000


def test_switch_program_completes():
    sim = run_micro(micro.rotating_switch(fanout=4))
    assert sim.backend.retired_instructions >= 3_000
