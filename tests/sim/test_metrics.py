"""Derived metrics over raw counters."""

from repro.sim.metrics import SimResult, geomean, speedup


def make_result(**counters):
    return SimResult("test", "cfg", counters=counters)


def test_ipc():
    r = make_result(cycles=1000, retired_instructions=1500)
    assert r.ipc == 1.5


def test_ipc_zero_cycles():
    assert make_result().ipc == 0.0


def test_icache_mpki():
    r = make_result(retired_instructions=10_000, icache_demand_misses=50)
    assert r.icache_mpki == 5.0


def test_timeliness_includes_demand_misses():
    r = make_result(atr_icache_hits=80, atr_mshr_hits=10, icache_demand_misses=10)
    assert r.timeliness == 0.8


def test_timeliness_default_with_no_events():
    assert make_result().timeliness == 1.0


def test_strict_merge_timeliness():
    r = make_result(atr_icache_hits=30, atr_mshr_hits=10, icache_demand_misses=100)
    assert r.prefetch_merge_timeliness == 0.75


def test_utility():
    r = make_result(prefetch_useful=30, prefetch_useless=10)
    assert r.utility == 0.75


def test_on_path_ratio():
    r = make_result(prefetches_emitted=100, prefetches_emitted_on_path=25)
    assert r.on_path_ratio == 0.25


def test_branch_metrics():
    r = make_result(
        retired_instructions=10_000,
        bpu_cond_mispredicts=50,
        bpu_cond_predictions=1000,
        btb_gen_hits=900,
        btb_gen_misses=100,
    )
    assert r.branch_mpki == 5.0
    assert r.cond_accuracy == 0.95
    assert r.btb_gen_hit_rate == 0.9


def test_resteers_per_kilo():
    r = make_result(retired_instructions=2000, resteers=10)
    assert r.resteers_per_kilo_instruction == 5.0


def test_summary_keys():
    summary = make_result(cycles=10, retired_instructions=10).summary()
    for key in ("ipc", "icache_mpki", "timeliness", "utility", "on_path_ratio"):
        assert key in summary


def test_getitem_defaults_zero():
    assert make_result()["whatever"] == 0


def test_speedup():
    fast = make_result(cycles=100, retired_instructions=200)
    slow = make_result(cycles=100, retired_instructions=100)
    assert speedup(fast, slow) == 2.0


def test_geomean():
    assert abs(geomean([1.0, 4.0]) - 2.0) < 1e-12
    assert geomean([]) == 0.0
    assert geomean([3.0]) == 3.0
