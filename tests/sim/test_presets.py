"""Named technique presets."""

import pytest

from repro.sim.presets import (
    PRESET_BUILDERS,
    baseline_config,
    bigger_icache_config,
    eip_config,
    infinite_storage_config,
    mana_config,
    no_prefetch_config,
    opt_config,
    perfect_icache_config,
    shadow_btb_config,
    udp_config,
    uftq_config,
)


@pytest.mark.parametrize("name", sorted(PRESET_BUILDERS))
def test_all_presets_validate(name):
    PRESET_BUILDERS[name]().validate()


def test_baseline_is_table2():
    config = baseline_config()
    assert config.frontend.ftq_depth == 32
    assert config.prefetcher.kind == "fdip"
    assert not config.udp.enabled
    assert config.uftq.mode == "off"


def test_baseline_custom_depth():
    assert baseline_config(ftq_depth=64).frontend.ftq_depth == 64


def test_perfect_icache_flag():
    assert perfect_icache_config().frontend.perfect_icache


def test_no_prefetch():
    assert no_prefetch_config().prefetcher.kind == "none"


def test_uftq_modes():
    for mode in ("aur", "atr", "atr-aur"):
        assert uftq_config(mode).uftq.mode == mode


def test_udp_enabled_with_paper_blooms():
    config = udp_config()
    assert config.udp.enabled
    assert config.udp.bloom_bits_1 == 16 * 1024
    assert config.udp.bloom_bits_2 == 1024
    assert config.udp.bloom_bits_4 == 1024
    assert config.udp.bloom_hashes == 6


def test_udp_overrides_forwarded():
    config = udp_config(confidence_threshold=3, use_superlines=False)
    assert config.udp.confidence_threshold == 3
    assert not config.udp.use_superlines


def test_infinite_storage():
    assert infinite_storage_config().udp.infinite_storage


def test_bigger_icache_is_40k_power_of_two_sets():
    config = bigger_icache_config()
    assert config.memory.l1i.size_bytes == 40 * 1024
    config.validate()  # 10-way keeps sets a power of two


def test_eip_rides_on_fdip():
    config = eip_config()
    assert config.prefetcher.kind == "eip"
    assert not config.prefetcher.standalone_only
    assert config.prefetcher.params.storage_bytes == 8 * 1024


def test_mana_rides_on_fdip_at_iso_storage():
    config = mana_config()
    assert config.prefetcher.kind == "mana"
    assert not config.prefetcher.standalone_only
    assert config.prefetcher.params.storage_bytes == 8 * 1024


def test_shadow_btb_declares_fill_hooks():
    caps = shadow_btb_config().prefetcher.capabilities
    assert caps.hooks_btb and caps.observes_fills and caps.uses_fdip


def test_opt_config_depth():
    assert opt_config(depth=60).frontend.ftq_depth == 60
