"""Stream data prefetcher."""

from repro.memory.stream import StreamPrefetcher


def test_needs_training_before_prefetching():
    p = StreamPrefetcher(train_threshold=2)
    assert p.on_miss(0) == []
    assert p.on_miss(64) == []
    assert p.on_miss(128) == []
    out = p.on_miss(192)
    assert out  # confidence reached


def test_prefetches_ahead_in_direction():
    p = StreamPrefetcher(degree=2, train_threshold=1)
    p.on_miss(0)
    p.on_miss(64)
    out = p.on_miss(128)
    assert out == [192, 256]


def test_descending_stream():
    p = StreamPrefetcher(degree=1, train_threshold=1)
    p.on_miss(10 * 64)
    p.on_miss(9 * 64)  # flips direction
    out = p.on_miss(8 * 64)
    assert out == [7 * 64]


def test_unrelated_misses_allocate_streams():
    p = StreamPrefetcher(max_streams=4)
    for i in range(3):
        p.on_miss(i * 1_000_000)
    assert p.active_streams == 3


def test_stream_count_bounded():
    p = StreamPrefetcher(max_streams=2)
    for i in range(10):
        p.on_miss(i * 1_000_000)
    assert p.active_streams <= 2


def test_issued_counter():
    p = StreamPrefetcher(degree=2, train_threshold=1)
    p.on_miss(0)
    p.on_miss(64)
    p.on_miss(128)
    assert p.issued == 2
