"""Set-associative cache: LRU, prefetch bits, eviction hooks."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.memory.cache import SetAssocCache


def make_cache(size=4 * 1024, assoc=4):
    return SetAssocCache(CacheConfig("t", size, assoc))


def test_miss_then_install_then_hit():
    cache = make_cache()
    assert cache.lookup(0x1000) is None
    cache.install(0x1000)
    assert cache.lookup(0x1000) is not None


def test_contains_does_not_touch_lru():
    cache = make_cache(size=512, assoc=2)  # 4 sets
    stride = 4 * 64
    a, b, c = 0, stride, 2 * stride
    cache.install(a)
    cache.install(b)
    assert cache.contains(a)  # must NOT refresh a
    # LRU order is still a < b, so installing c evicts a.
    cache.install(c)
    assert not cache.contains(a)
    assert cache.contains(b)


def test_lookup_refreshes_lru():
    cache = make_cache(size=512, assoc=2)
    stride = 4 * 64
    a, b, c = 0, stride, 2 * stride
    cache.install(a)
    cache.install(b)
    cache.lookup(a)  # refresh
    cache.install(c)  # evicts b now
    assert cache.contains(a)
    assert not cache.contains(b)


def test_eviction_hook_receives_victim():
    cache = make_cache(size=512, assoc=2)
    victims = []
    cache.eviction_hook = victims.append
    stride = 4 * 64
    for i in range(3):
        cache.install(i * stride, prefetch=(i == 0))
    assert len(victims) == 1
    assert victims[0].line_addr == 0
    assert victims[0].prefetch_bit


def test_reinstall_keeps_demand_status():
    cache = make_cache()
    cache.install(0x1000)  # demand line
    line = cache.install(0x1000, prefetch=True)  # refresh must not mark prefetch
    assert not line.prefetch_bit


def test_install_prefetch_metadata():
    cache = make_cache()
    line = cache.install(0x2000, prefetch=True, prefetch_off_path=True,
                         prefetch_udp_candidate=True)
    assert line.prefetch_bit
    assert line.prefetch_off_path
    assert line.prefetch_udp_candidate


def test_invalidate():
    cache = make_cache()
    cache.install(0x1000)
    assert cache.invalidate(0x1000)
    assert not cache.contains(0x1000)
    assert not cache.invalidate(0x1000)


def test_dirty_bit_sticky():
    cache = make_cache()
    cache.install(0x1000, dirty=True)
    line = cache.install(0x1000, dirty=False)
    assert line.dirty


def test_occupancy_and_resident_lines():
    cache = make_cache()
    for i in range(5):
        cache.install(i * 64)
    assert cache.occupancy == 5
    assert sorted(cache.resident_lines()) == [i * 64 for i in range(5)]


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300))
def test_set_occupancy_never_exceeds_assoc(line_numbers):
    cache = make_cache(size=1024, assoc=2)  # 8 sets
    for n in line_numbers:
        cache.install(n * 64)
    for way_set in cache._sets:
        assert len(way_set) <= 2


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
def test_most_recent_install_always_resident(line_numbers):
    cache = make_cache(size=1024, assoc=2)
    for n in line_numbers:
        cache.install(n * 64)
        assert cache.contains(n * 64)


@given(st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=300))
def test_line_conservation(line_numbers):
    """Every fresh install is balanced: installs == evictions + residents."""
    cache = make_cache(size=1024, assoc=2)
    evictions = []
    cache.eviction_hook = evictions.append
    fresh_installs = 0
    for n in line_numbers:
        if not cache.contains(n * 64):
            fresh_installs += 1
        cache.install(n * 64)
    assert fresh_installs == len(evictions) + cache.occupancy
    # An evicted line is not resident unless it was re-installed later.
    assert set(cache.resident_lines()).isdisjoint(
        {v.line_addr for v in evictions}
    ) or any(line_numbers.count(v.line_addr // 64) > 1 for v in evictions)
