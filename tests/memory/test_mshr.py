"""MSHR file: allocation, merging discipline, fill ordering."""

from repro.memory.mshr import MSHRFile


def test_allocate_and_lookup():
    mshr = MSHRFile(capacity=4)
    entry = mshr.allocate(0x1000, ready_cycle=10, is_prefetch=True)
    assert entry is not None
    assert mshr.lookup(0x1000) is entry
    assert len(mshr) == 1


def test_duplicate_allocation_rejected():
    mshr = MSHRFile(capacity=4)
    mshr.allocate(0x1000, 10, is_prefetch=False)
    assert mshr.allocate(0x1000, 20, is_prefetch=True) is None


def test_capacity_enforced():
    mshr = MSHRFile(capacity=2)
    mshr.allocate(0x1000, 10, False)
    mshr.allocate(0x2000, 10, False)
    assert mshr.full
    assert mshr.allocate(0x3000, 10, False) is None


def test_pop_ready_ordering():
    mshr = MSHRFile(capacity=8)
    mshr.allocate(0x1000, ready_cycle=30, is_prefetch=False)
    mshr.allocate(0x2000, ready_cycle=10, is_prefetch=False)
    mshr.allocate(0x3000, ready_cycle=20, is_prefetch=False)
    assert [e.line_addr for e in mshr.pop_ready(5)] == []
    assert [e.line_addr for e in mshr.pop_ready(20)] == [0x2000, 0x3000]
    assert [e.line_addr for e in mshr.pop_ready(100)] == [0x1000]
    assert len(mshr) == 0


def test_pop_ready_removes_entries():
    mshr = MSHRFile(capacity=2)
    mshr.allocate(0x1000, 10, False)
    mshr.pop_ready(10)
    assert not mshr.full
    assert mshr.lookup(0x1000) is None


def test_next_ready_cycle():
    mshr = MSHRFile(capacity=4)
    assert mshr.next_ready_cycle() is None
    mshr.allocate(0x1000, 50, False)
    mshr.allocate(0x2000, 30, False)
    assert mshr.next_ready_cycle() == 30


def test_metadata_preserved():
    mshr = MSHRFile(capacity=4)
    entry = mshr.allocate(
        0x1000, 10, is_prefetch=True, off_path=True, udp_candidate=True,
        fill_level="llc",
    )
    assert entry.off_path
    assert entry.udp_candidate
    assert entry.fill_level == "llc"
    assert not entry.demand_merged
    assert not entry.demand_on_path


def test_clear():
    mshr = MSHRFile(capacity=4)
    mshr.allocate(0x1000, 10, False)
    mshr.clear()
    assert len(mshr) == 0
    assert mshr.pop_ready(100) == []
