"""Uncore latency resolution and inclusive fills."""

from repro.common.config import MemoryConfig
from repro.memory.hierarchy import MemoryHierarchy


def make_hierarchy():
    return MemoryHierarchy(MemoryConfig())


def test_ifetch_cold_goes_to_dram():
    h = make_hierarchy()
    latency, level = h.instruction_miss_latency(0x1000)
    assert level == "dram"
    assert latency == h.config.dram_latency


def test_ifetch_second_access_hits_l2():
    h = make_hierarchy()
    h.instruction_miss_latency(0x1000)
    latency, level = h.instruction_miss_latency(0x1000)
    assert level == "l2"
    assert latency == h.config.l2.hit_latency


def test_inclusive_fill_into_llc():
    h = make_hierarchy()
    h.instruction_miss_latency(0x1000)
    assert h.llc.contains(0x1000)
    assert h.l2.contains(0x1000)


def test_llc_hit_after_l2_eviction():
    h = make_hierarchy()
    h.instruction_miss_latency(0x1000)
    h.l2.invalidate(0x1000)
    latency, level = h.instruction_miss_latency(0x1000)
    assert level == "llc"
    assert latency == h.config.llc.hit_latency
    assert h.l2.contains(0x1000)  # refilled inclusively


def test_load_cold_latency_includes_dram():
    h = make_hierarchy()
    latency = h.load_latency(0x5000_0000)
    assert latency >= h.config.dram_latency


def test_load_warm_hits_l1d():
    h = make_hierarchy()
    h.load_latency(0x5000_0000)
    assert h.load_latency(0x5000_0000) == h.config.l1d.hit_latency


def test_store_allocates_dirty():
    h = make_hierarchy()
    h.store_access(0x6000_0000)
    line = h.l1d.lookup(0x6000_0000 & ~63, touch=False)
    assert line is not None and line.dirty


def test_store_to_resident_line_marks_dirty():
    h = make_hierarchy()
    h.load_latency(0x6000_0040)
    h.store_access(0x6000_0040)
    line = h.l1d.lookup(0x6000_0040 & ~63, touch=False)
    assert line.dirty


def test_stream_prefetcher_reduces_future_latency():
    h = make_hierarchy()
    base = 0x7000_0000
    # Walk a stream long enough to train and trigger prefetches.
    latencies = [h.load_latency(base + i * 64) for i in range(12)]
    assert h.counters["stream_prefetches"] > 0
    # Later stream accesses should be cheaper than the cold ones.
    assert min(latencies[6:]) < max(latencies[:3])


def test_counters_track_hits_and_misses():
    h = make_hierarchy()
    h.load_latency(0x5000_0000)
    h.load_latency(0x5000_0000)
    assert h.counters["l1d_misses"] == 1
    assert h.counters["l1d_hits"] == 1
