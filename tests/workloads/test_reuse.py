"""Reuse-distance analysis."""

from repro.workloads import micro
from repro.workloads.reuse import ReuseProfile, code_reuse_profile
from repro.workloads.synth import synthesize
from repro.workloads.profiles import get_profile


def test_tiny_loop_all_reuse_distance_zero():
    program = micro.straight_loop(body_instrs=8)  # one line, revisited
    profile = code_reuse_profile(program, num_blocks=50)
    assert profile.cold_accesses == 1
    assert set(profile.histogram) <= {0}


def test_round_robin_distances():
    # 4 hops x 2 blocks, each hop ~1 line apart: cyclic reuse.
    program = micro.always_taken_chain(num_hops=4)
    profile = code_reuse_profile(program, num_blocks=100)
    assert profile.cold_accesses >= 4
    assert profile.total_accesses > 50
    # Cyclic access over N distinct lines -> constant distance N-1.
    assert profile.median_distance is not None


def test_hit_rate_monotone_in_capacity():
    program = synthesize(get_profile("mediawiki"), 1)
    profile = code_reuse_profile(program, num_blocks=2_000)
    rates = [profile.hit_rate_at(c) for c in (8, 64, 512, 4096)]
    assert rates == sorted(rates)
    assert rates[-1] <= 1.0


def test_miss_curve_shape():
    program = synthesize(get_profile("mediawiki"), 1)
    profile = code_reuse_profile(program, num_blocks=2_000)
    curve = profile.miss_curve([64, 512])
    assert curve[0][1] >= curve[1][1]


def test_large_footprint_needs_more_capacity():
    small = code_reuse_profile(synthesize(get_profile("mediawiki"), 1), 3_000)
    large = code_reuse_profile(synthesize(get_profile("gcc"), 1), 3_000)
    # At L1I capacity (512 lines), the large-footprint app misses more.
    assert large.hit_rate_at(512) < small.hit_rate_at(512) + 0.05


def test_empty_profile():
    profile = ReuseProfile()
    assert profile.hit_rate_at(100) == 0.0
    assert profile.median_distance is None
