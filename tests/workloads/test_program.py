"""Static program model: validation and address mapping."""

import pytest

from repro.common.errors import ProgramError
from repro.workloads.behavior import AlwaysTaken, BiasedBehavior
from repro.workloads.program import BasicBlock, Branch, BranchKind, Program


def _block(addr, n, branch=None, ops=b""):
    return BasicBlock(addr, n, branch, ops)


def _cond(pc, target):
    return Branch(pc, BranchKind.COND, target=target, direction=BiasedBehavior(1, 0.5))


def test_simple_program_validates():
    blocks = [
        _block(0x1000, 4, Branch(0x100C, BranchKind.JUMP, target=0x1000)),
    ]
    program = Program(blocks)
    assert program.code_start == 0x1000
    assert program.code_end == 0x1010
    assert program.entry == 0x1000


def test_rejects_empty_program():
    with pytest.raises(ProgramError):
        Program([])


def test_rejects_empty_block():
    with pytest.raises(ProgramError):
        Program([_block(0x1000, 0)])


def test_rejects_gap_between_blocks():
    a = _block(0x1000, 4, Branch(0x100C, BranchKind.JUMP, target=0x1000))
    b = _block(0x1020, 4, Branch(0x102C, BranchKind.JUMP, target=0x1000))
    with pytest.raises(ProgramError):
        Program([a, b])


def test_rejects_branch_not_at_block_end():
    bad = Branch(0x1004, BranchKind.JUMP, target=0x1000)
    with pytest.raises(ProgramError):
        Program([_block(0x1000, 4, bad)])


def test_rejects_target_outside_code():
    blocks = [_block(0x1000, 4, Branch(0x100C, BranchKind.JUMP, target=0x9000))]
    with pytest.raises(ProgramError):
        Program(blocks)


def test_rejects_target_not_at_block_start():
    blocks = [
        _block(0x1000, 4, Branch(0x100C, BranchKind.JUMP, target=0x1004)),
    ]
    with pytest.raises(ProgramError):
        Program(blocks)


def test_rejects_ops_length_mismatch():
    with pytest.raises(ProgramError):
        Program([_block(0x1000, 4, None, ops=b"\x00\x00")])


def test_rejects_indirect_without_targets():
    branch = Branch(0x100C, BranchKind.INDIRECT)
    with pytest.raises(ProgramError):
        Program([_block(0x1000, 4, branch)])


def test_block_at_maps_interior_addresses():
    a = _block(0x1000, 4)
    b = _block(0x1010, 4, Branch(0x101C, BranchKind.JUMP, target=0x1000))
    program = Program([a, b])
    assert program.block_at(0x1000) is a
    assert program.block_at(0x100C) is a
    assert program.block_at(0x1010) is b
    assert program.block_at(0x101F) is b


def test_block_at_wraps_outside_code():
    a = _block(0x1000, 8, Branch(0x101C, BranchKind.JUMP, target=0x1000))
    program = Program([a])
    # One byte past the end wraps to the start.
    assert program.block_at(0x1020) is a
    assert program.wrap(0x1020) == 0x1000
    assert program.wrap(0x1024) == 0x1004


def test_branch_between():
    a = _block(0x1000, 4)
    b = _block(0x1010, 4, _cond(0x101C, 0x1000))
    program = Program([a, b])
    assert program.branch_between(0x1000, 0x1010) is None
    found = program.branch_between(0x1010, 0x1020)
    assert found is not None and found.pc == 0x101C


def test_branch_fallthrough():
    branch = _cond(0x101C, 0x1000)
    assert branch.fallthrough == 0x1020


def test_true_taken_requires_direction_for_cond():
    branch = Branch(0x100C, BranchKind.JUMP, target=0x1000)
    assert branch.true_taken(0) is True


def test_ret_true_target_raises():
    branch = Branch(0x100C, BranchKind.RET)
    with pytest.raises(ProgramError):
        branch.true_target(0)


def test_kind_properties():
    assert BranchKind.CALL.is_call
    assert BranchKind.INDIRECT_CALL.is_call
    assert BranchKind.INDIRECT.is_indirect
    assert not BranchKind.COND.is_unconditional
    assert BranchKind.RET.is_unconditional


def test_branch_kind_histogram():
    blocks = [
        _block(0x1000, 4, _cond(0x100C, 0x1000)),
        _block(0x1010, 4, Branch(0x101C, BranchKind.JUMP, target=0x1000)),
    ]
    program = Program(blocks)
    hist = program.branch_kind_histogram()
    assert hist[BranchKind.COND] == 1
    assert hist[BranchKind.JUMP] == 1


def test_footprint_and_counts():
    blocks = [
        _block(0x1000, 4),
        _block(0x1010, 4, Branch(0x101C, BranchKind.JUMP, target=0x1000)),
    ]
    program = Program(blocks)
    assert program.footprint_bytes == 0x20
    assert program.num_blocks == 2
    assert program.num_branches == 1


def test_entry_must_be_inside_code():
    blocks = [_block(0x1000, 4, Branch(0x100C, BranchKind.JUMP, target=0x1000))]
    with pytest.raises(ProgramError):
        Program(blocks, entry=0x2000)


def test_block_op_at():
    block = _block(0x1000, 3, ops=bytes([0, 1, 2]))
    assert block.op_at(0x1000) == 0
    assert block.op_at(0x1004) == 1
    assert block.op_at(0x1008) == 2


def test_block_op_at_defaults_alu_without_ops():
    block = _block(0x1000, 3)
    assert block.op_at(0x1004) == 0
