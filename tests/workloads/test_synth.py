"""Workload synthesis: determinism, structure, per-profile characteristics."""

import pytest

from repro.workloads.profiles import SUITE, get_profile
from repro.workloads.program import BranchKind
from repro.workloads.synth import footprint_report, synthesize
from repro.workloads.trace import run_trace, trace_statistics


@pytest.fixture(scope="module")
def mysql_program():
    return synthesize(get_profile("mysql"), seed=1)


def test_all_profiles_synthesize():
    for profile in SUITE:
        program = synthesize(profile, seed=1)
        assert program.num_blocks > 100
        assert program.footprint_bytes > 32 * 1024  # exceeds the L1I


def test_synthesis_deterministic(mysql_program):
    again = synthesize(get_profile("mysql"), seed=1)
    assert again.num_blocks == mysql_program.num_blocks
    assert again.code_end == mysql_program.code_end
    assert [b.addr for b in again.blocks[:100]] == [
        b.addr for b in mysql_program.blocks[:100]
    ]


def test_synthesis_seed_sensitivity(mysql_program):
    other = synthesize(get_profile("mysql"), seed=2)
    assert other.num_blocks != mysql_program.num_blocks or (
        [b.num_instrs for b in other.blocks[:50]]
        != [b.num_instrs for b in mysql_program.blocks[:50]]
    )


def test_profiles_generate_unrelated_programs():
    a = synthesize(get_profile("mysql"), seed=1)
    b = synthesize(get_profile("postgres"), seed=1)
    assert a.num_blocks != b.num_blocks


def test_verilator_has_largest_footprint():
    sizes = {p.name: synthesize(p, seed=1).footprint_bytes for p in SUITE}
    assert max(sizes, key=sizes.get) == "verilator"


def test_mediawiki_has_smallest_footprint():
    sizes = {p.name: synthesize(p, seed=1).footprint_bytes for p in SUITE}
    assert min(sizes, key=sizes.get) == "mediawiki"


def test_branch_kinds_present(mysql_program):
    hist = mysql_program.branch_kind_histogram()
    for kind in (BranchKind.COND, BranchKind.JUMP, BranchKind.CALL, BranchKind.RET):
        assert hist.get(kind, 0) > 0, f"no {kind.name} branches synthesized"
    assert hist.get(BranchKind.INDIRECT, 0) > 0  # switches
    assert hist.get(BranchKind.INDIRECT_CALL, 0) >= 1  # the dispatcher


def test_xgboost_is_branchiest():
    density = {}
    for name in ("xgboost", "verilator", "mysql"):
        report = footprint_report(synthesize(get_profile(name), seed=1))
        density[name] = report["branch_density"]
    assert density["xgboost"] > density["mysql"]
    assert density["xgboost"] > density["verilator"]


def test_traces_run_without_errors():
    for profile in SUITE:
        program = synthesize(profile, seed=1)
        steps = run_trace(program, 500)
        assert len(steps) == 500


def test_verilator_low_taken_noise():
    """verilator's conditionals are overwhelmingly biased (predictable)."""
    stats = trace_statistics(synthesize(get_profile("verilator"), seed=1), 3000)
    assert stats["instructions"] > 0


def test_footprint_report_keys(mysql_program):
    report = footprint_report(mysql_program)
    assert report["footprint_kib"] > 0
    assert report["blocks"] == mysql_program.num_blocks
    assert 0 < report["branch_density"] <= 1.0


def test_dispatcher_reaches_many_functions():
    """Over a long trace, the zipf dispatcher must cover many functions."""
    program = synthesize(get_profile("gcc"), seed=1)
    lines = trace_statistics(program, 6000)["unique_lines"]
    assert lines * 64 > 32 * 1024  # touched code exceeds the L1I


def test_tree_regions_in_xgboost():
    """xgboost's profile must actually synthesize decision trees."""
    program = synthesize(get_profile("xgboost"), seed=1)
    report = footprint_report(program)
    # Trees are jump-heavy (every leaf ends in a jump to the continuation).
    assert report["kind_jump"] > report["blocks"] * 0.2
