"""The handcrafted micro programs validate and behave as documented."""

import pytest

from repro.workloads import micro
from repro.workloads.program import BranchKind
from repro.workloads.trace import OracleCursor


@pytest.mark.parametrize(
    "factory",
    [
        micro.straight_loop,
        micro.counted_loop.__get__ if False else (lambda: micro.counted_loop(4)),
        micro.diamond,
        lambda: micro.pattern_diamond(0b1010, 4),
        micro.call_return,
        micro.rotating_switch,
        micro.long_straight,
        micro.always_taken_chain,
        micro.mispredicting_loop,
    ],
)
def test_micro_programs_validate_and_walk(factory):
    program = factory()
    cursor = OracleCursor(program)
    for _ in range(50):
        cursor.step()
    assert cursor.blocks_walked == 50


def test_long_straight_shape():
    program = micro.long_straight(num_blocks=16, block_instrs=8)
    assert program.num_blocks == 16
    assert program.num_branches == 1  # only the final wrap-around jump


def test_always_taken_chain_hops():
    program = micro.always_taken_chain(num_hops=4)
    cursor = OracleCursor(program)
    visited = set()
    for _ in range(16):
        t = cursor.step()
        if t.branch is not None:
            visited.add(t.next_pc)
    assert len(visited) == 4


def test_pattern_diamond_follows_pattern():
    program = micro.pattern_diamond(0b0011, 4)
    cursor = OracleCursor(program)
    outcomes = []
    while len(outcomes) < 8:
        t = cursor.step()
        if t.branch is not None and t.branch.kind == BranchKind.COND:
            outcomes.append(t.taken)
    assert outcomes == [True, True, False, False] * 2


def test_diamond_entry_is_cond():
    program = micro.diamond()
    assert program.block_at(program.entry).branch.kind == BranchKind.COND
