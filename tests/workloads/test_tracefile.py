"""Trace export/import round trip."""

import json

import pytest

from repro.workloads import micro
from repro.workloads.tracefile import (
    read_trace,
    record_trace,
    trace_branch_mix,
    trace_working_set_curve,
)
from repro.workloads.trace import run_trace


def test_round_trip(tmp_path):
    program = micro.counted_loop(trip_count=4)
    path = tmp_path / "t.jsonl"
    instructions = record_trace(program, 50, path)
    header, records = read_trace(path)
    assert header["entry"] == program.entry
    assert len(records) == 50
    assert sum(r.num_instrs for r in records) == instructions


def test_trace_matches_oracle(tmp_path):
    program = micro.diamond(p_taken=0.3, seed=5)
    path = tmp_path / "t.jsonl"
    record_trace(program, 30, path)
    _, records = read_trace(path)
    truth = run_trace(program, 30)
    for record, t in zip(records, truth):
        assert record.addr == t.block.addr
        assert record.next_pc == t.next_pc
        assert record.taken == t.taken


def test_rejects_foreign_file(tmp_path):
    path = tmp_path / "bogus.jsonl"
    path.write_text(json.dumps({"format": "other"}) + "\n")
    with pytest.raises(ValueError):
        read_trace(path)


def test_branch_mix(tmp_path):
    program = micro.straight_loop()
    path = tmp_path / "t.jsonl"
    record_trace(program, 20, path)
    _, records = read_trace(path)
    mix = trace_branch_mix(records)
    assert mix["blocks"] == 20
    assert mix["branch_fraction"] == 1.0  # every block ends in the jump
    assert mix["taken_rate"] == 1.0
    assert mix["unique_blocks"] == 1


def test_branch_mix_empty():
    assert trace_branch_mix([])["blocks"] == 0


def test_working_set_curve(tmp_path):
    program = micro.long_straight(num_blocks=128, block_instrs=8)
    path = tmp_path / "t.jsonl"
    record_trace(program, 200, path)
    _, records = read_trace(path)
    curve = trace_working_set_curve(records, window_instrs=400)
    assert curve
    for _, unique_lines in curve:
        assert unique_lines > 0
    # The windowed working set can never exceed the program footprint.
    max_lines = (program.footprint_bytes // 64) + 2
    assert all(u <= max_lines for _, u in curve)
