"""Phase-shifting workloads."""

from repro.workloads.phases import make_phased_program, phase_summary
from repro.workloads.profiles import get_profile
from repro.workloads.program import BranchKind
from repro.workloads.trace import OracleCursor
from repro.workloads.synth import synthesize


def test_static_cfg_preserved():
    base = get_profile("mediawiki")
    original = synthesize(base, seed=1)
    phased = make_phased_program(base, seed=1)
    assert phased.num_blocks == original.num_blocks
    assert phased.code_end == original.code_end
    for a, b in zip(original.blocks, phased.blocks):
        assert a.addr == b.addr
        assert a.num_instrs == b.num_instrs
        if a.branch is not None:
            assert b.branch is not None
            assert a.branch.kind == b.branch.kind
            assert a.branch.target == b.branch.target


def test_affected_fraction_controls_wrapping():
    base = get_profile("mediawiki")
    none = make_phased_program(base, seed=1, affected_fraction=0.0)
    all_of_them = make_phased_program(base, seed=1, affected_fraction=1.0)
    assert phase_summary(none)["phased_conditionals"] == 0
    assert phase_summary(all_of_them)["plain_conditionals"] == 0


def test_phased_program_walks():
    program = make_phased_program(get_profile("mediawiki"), seed=1,
                                  phase_length=50)
    cursor = OracleCursor(program)
    for _ in range(500):
        cursor.step()
    assert cursor.blocks_walked == 500


def test_phase_changes_branch_statistics():
    """Odd phases are noisier: taken-rates of phased branches shift."""
    program = make_phased_program(
        get_profile("mediawiki"), seed=1, phase_length=100,
        unstable_p_taken=0.5, affected_fraction=1.0,
    )
    cursor = OracleCursor(program)
    outcomes = []
    while len(outcomes) < 4_000:
        t = cursor.step()
        if t.branch is not None and t.branch.kind == BranchKind.COND:
            occ = cursor.occurrence_of(t.branch.pc) - 1
            phase = (occ // 100) % 2
            outcomes.append((phase, t.taken))
    even = [taken for phase, taken in outcomes if phase == 0]
    odd = [taken for phase, taken in outcomes if phase == 1]
    if even and odd:
        even_rate = sum(even) / len(even)
        odd_rate = sum(odd) / len(odd)
        # Odd phases approach the 0.5 coin flip; even phases keep the
        # original (biased) behaviour.
        assert abs(odd_rate - 0.5) < abs(even_rate - 0.5) + 0.15
