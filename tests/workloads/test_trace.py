"""Oracle cursor semantics on handcrafted programs."""

import pytest

from repro.common.errors import SimulationError
from repro.workloads import micro
from repro.workloads.program import BranchKind
from repro.workloads.trace import OracleCursor, run_trace, trace_statistics


def test_straight_loop_repeats_one_block():
    program = micro.straight_loop(body_instrs=8)
    steps = run_trace(program, 5)
    assert all(t.block.addr == program.entry for t in steps)
    assert all(t.taken for t in steps)


def test_counted_loop_outcomes():
    program = micro.counted_loop(trip_count=3)
    cursor = OracleCursor(program)
    taken_seq = []
    while len(taken_seq) < 6:
        t = cursor.step()
        if t.branch is not None and t.branch.kind == BranchKind.COND:
            taken_seq.append(t.taken)
    # LoopBehavior(3): taken, taken, not-taken repeating.
    assert taken_seq == [True, True, False, True, True, False]


def test_call_return_stack():
    program = micro.call_return()
    cursor = OracleCursor(program)
    # H(call F) -> F body -> F ret -> back after call.
    t1 = cursor.step()
    assert t1.branch.kind == BranchKind.CALL
    assert len(cursor.call_stack) == 1
    return_addr = cursor.call_stack[0]
    cursor.step()  # function body (falls through)
    t3 = cursor.step()  # ret
    assert t3.branch.kind == BranchKind.RET
    assert t3.next_pc == return_addr
    assert len(cursor.call_stack) == 0


def test_rotating_switch_targets():
    program = micro.rotating_switch(fanout=3)
    cursor = OracleCursor(program)
    targets = []
    for _ in range(6):
        t = cursor.step()  # switch
        targets.append(t.next_pc)
        cursor.step()  # case block jumps back
    assert targets[0] != targets[1] != targets[2]
    assert targets[:3] == targets[3:6]


def test_occurrence_counters_advance():
    program = micro.counted_loop(trip_count=4)
    cursor = OracleCursor(program)
    branch_pc = None
    for _ in range(6):
        t = cursor.step()
        if t.branch is not None and t.branch.kind == BranchKind.COND:
            branch_pc = t.branch.pc
    assert branch_pc is not None
    assert cursor.occurrence_of(branch_pc) >= 1


def test_transition_does_not_commit():
    program = micro.straight_loop()
    cursor = OracleCursor(program)
    pc_before = cursor.pc
    cursor.transition()
    assert cursor.pc == pc_before
    assert cursor.blocks_walked == 0


def test_mid_block_pc_raises():
    program = micro.straight_loop(body_instrs=8)
    cursor = OracleCursor(program)
    cursor.pc = program.entry + 4
    with pytest.raises(SimulationError):
        cursor.current_block()


def test_instrs_walked_accumulates():
    program = micro.straight_loop(body_instrs=8)
    cursor = OracleCursor(program)
    for _ in range(3):
        cursor.step()
    assert cursor.instrs_walked == 24
    assert cursor.blocks_walked == 3


def test_call_stack_bounded():
    program = micro.call_return()
    cursor = OracleCursor(program, max_stack=2)
    # Force-push beyond the bound via repeated call transitions.
    for _ in range(12):
        cursor.step()
    assert len(cursor.call_stack) <= 2


def test_run_trace_length():
    program = micro.diamond()
    assert len(run_trace(program, 17)) == 17


def test_trace_statistics_fields():
    program = micro.diamond(p_taken=0.5, seed=3)
    stats = trace_statistics(program, 200)
    assert stats["instructions"] > 0
    assert 0.0 <= stats["taken_rate"] <= 1.0
    assert stats["unique_lines"] >= 1
    assert stats["avg_block_instrs"] > 0


def test_diamond_both_arms_visited():
    program = micro.diamond(p_taken=0.5, seed=3)
    cursor = OracleCursor(program)
    next_pcs = set()
    for _ in range(40):
        t = cursor.step()
        if t.branch is not None and t.branch.kind == BranchKind.COND:
            next_pcs.add(t.next_pc)
    assert len(next_pcs) == 2  # both then- and else-side reached
