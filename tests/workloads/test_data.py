"""Data-address stream generation."""

from repro.workloads.data import DataAddressGenerator
from repro.workloads.profiles import DataProfile


def test_classification_deterministic():
    gen = DataAddressGenerator(DataProfile(), seed=1)
    assert gen.classify(0x1000) == gen.classify(0x1000)


def test_class_mix_roughly_matches_profile():
    profile = DataProfile(stack_frac=0.5, stream_frac=0.3)
    gen = DataAddressGenerator(profile, seed=1)
    classes = [gen.classify(0x1000 + 4 * i) for i in range(4000)]
    stack = classes.count("stack") / len(classes)
    stream = classes.count("stream") / len(classes)
    assert 0.46 < stack < 0.54
    assert 0.26 < stream < 0.34


def test_stack_addresses_stay_in_small_region():
    gen = DataAddressGenerator(DataProfile(stack_frac=1.0, stream_frac=0.0), seed=1)
    addrs = [gen.next_address(0x1000 + 4 * i) for i in range(200)]
    assert max(addrs) - min(addrs) < 64 * 1024


def test_stream_addresses_stride():
    gen = DataAddressGenerator(DataProfile(stack_frac=0.0, stream_frac=1.0), seed=1)
    pc = 0x2000
    addrs = [gen.next_address(pc) for _ in range(10)]
    deltas = {b - a for a, b in zip(addrs, addrs[1:])}
    assert deltas == {64}  # fixed stride per PC


def test_random_addresses_spread():
    profile = DataProfile(stack_frac=0.0, stream_frac=0.0, data_footprint_bytes=1 << 24)
    gen = DataAddressGenerator(profile, seed=1)
    addrs = {gen.next_address(0x3000) for _ in range(100)}
    assert len(addrs) > 90  # nearly all distinct


def test_reset_restarts_occurrences():
    gen = DataAddressGenerator(DataProfile(stack_frac=0.0, stream_frac=1.0), seed=1)
    first = gen.next_address(0x4000)
    gen.next_address(0x4000)
    gen.reset()
    assert gen.next_address(0x4000) == first


def test_different_seeds_differ():
    a = DataAddressGenerator(DataProfile(), seed=1)
    b = DataAddressGenerator(DataProfile(), seed=2)
    addrs_a = [a.next_address(0x5000 + 8 * i) for i in range(50)]
    addrs_b = [b.next_address(0x5000 + 8 * i) for i in range(50)]
    assert addrs_a != addrs_b
