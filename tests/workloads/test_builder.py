"""ProgramBuilder: label resolution, emission, errors."""

import pytest

from repro.common.errors import ProgramError
from repro.workloads.behavior import AlwaysTaken, RotatingTargets
from repro.workloads.builder import ProgramBuilder, make_ops
from repro.workloads.program import BranchKind


def test_forward_label_resolution():
    b = ProgramBuilder(base=0x1000)
    target = b.label("t")
    b.set_entry()
    b.block(4, jump_to=target)
    b.place(target)
    b.block(2, jump_to=0x1000)
    program = b.finish()
    first = program.blocks[0]
    assert first.branch is not None
    assert first.branch.target == 0x1010


def test_backward_address_target():
    b = ProgramBuilder(base=0x1000)
    b.set_entry()
    b.block(4, jump_to=0x1000)
    program = b.finish()
    assert program.blocks[0].branch.target == 0x1000


def test_unplaced_label_raises():
    b = ProgramBuilder(base=0x1000)
    dangling = b.label("d")
    b.block(4, jump_to=dangling)
    with pytest.raises(ProgramError):
        b.finish()


def test_double_place_raises():
    b = ProgramBuilder(base=0x1000)
    label = b.label("x")
    b.place(label)
    b.block(4, jump_to=label)
    with pytest.raises(ProgramError):
        b.place(label)


def test_unaligned_base_raises():
    with pytest.raises(ProgramError):
        ProgramBuilder(base=0x1001)


def test_cond_branch_emission():
    b = ProgramBuilder(base=0x1000)
    head = b.label("h")
    b.place(head)
    b.set_entry()
    b.cond_branch(4, target=head, behavior=AlwaysTaken())
    program = b.finish()
    branch = program.blocks[0].branch
    assert branch.kind == BranchKind.COND
    assert branch.pc == 0x100C
    assert branch.target == 0x1000


def test_call_and_ret_emission():
    b = ProgramBuilder(base=0x1000)
    func = b.label("f")
    b.set_entry()
    b.call(2, target=func)
    b.block(2, jump_to=0x1000)
    b.place(func)
    b.ret(2)
    program = b.finish()
    assert program.blocks[0].branch.kind == BranchKind.CALL
    assert program.blocks[2].branch.kind == BranchKind.RET


def test_indirect_with_label_targets():
    b = ProgramBuilder(base=0x1000)
    cases = [b.label(f"c{i}") for i in range(3)]
    b.set_entry()
    b.indirect(2, targets=list(cases), behavior=RotatingTargets())
    for label in cases:
        b.place(label)
        b.block(2, jump_to=0x1000)
    program = b.finish()
    branch = program.blocks[0].branch
    assert branch.kind == BranchKind.INDIRECT
    assert len(branch.targets) == 3
    assert branch.targets[0] == 0x1008
    assert branch.true_target(0) == branch.targets[0]
    assert branch.true_target(1) == branch.targets[1]


def test_indirect_call_kind():
    b = ProgramBuilder(base=0x1000)
    case = b.label("c")
    b.set_entry()
    b.indirect(2, targets=[case], behavior=RotatingTargets(), call=True)
    b.place(case)
    b.block(2, jump_to=0x1000)
    program = b.finish()
    assert program.blocks[0].branch.kind == BranchKind.INDIRECT_CALL


def test_here_tracks_cursor():
    b = ProgramBuilder(base=0x1000)
    assert b.here() == 0x1000
    b.block(4)
    assert b.here() == 0x1010


def test_make_ops_mix():
    import random

    rng = random.Random(1)
    ops = make_ops(10_000, rng, load_frac=0.3, store_frac=0.1)
    loads = ops.count(1) / len(ops)
    stores = ops.count(2) / len(ops)
    assert 0.27 < loads < 0.33
    assert 0.08 < stores < 0.12


def test_blocks_tile_contiguously():
    b = ProgramBuilder(base=0x1000)
    b.set_entry()
    for _ in range(5):
        b.block(3)
    b.block(2, jump_to=0x1000)
    program = b.finish()
    for prev, cur in zip(program.blocks, program.blocks[1:]):
        assert prev.end_addr == cur.addr
