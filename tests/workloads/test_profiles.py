"""Suite profile metadata."""

import pytest

from repro.workloads.profiles import (
    PAPER_TABLE3,
    SUITE,
    SUITE_BY_NAME,
    get_profile,
)


def test_ten_workloads():
    assert len(SUITE) == 10


def test_names_match_paper():
    assert {p.name for p in SUITE} == {
        "mysql", "postgres", "clang", "gcc", "drupal",
        "verilator", "mongodb", "tomcat", "xgboost", "mediawiki",
    }


def test_paper_table3_covers_suite():
    assert set(PAPER_TABLE3) == {p.name for p in SUITE}


def test_paper_table3_values():
    # Spot checks against the paper's Table III.
    assert PAPER_TABLE3["verilator"] == (84, 0.64, 0.46)
    assert PAPER_TABLE3["xgboost"] == (12, 0.30, 0.31)
    assert PAPER_TABLE3["gcc"][0] == 60


def test_unique_seed_salts():
    salts = [p.seed_salt for p in SUITE]
    assert len(set(salts)) == len(salts)


def test_get_profile():
    assert get_profile("mysql") is SUITE_BY_NAME["mysql"]


def test_get_profile_unknown():
    with pytest.raises(KeyError, match="unknown workload"):
        get_profile("oracle-db")


def test_verilator_is_chain_dispatched():
    assert get_profile("verilator").dispatcher == "chain"
    assert all(
        p.dispatcher == "zipf" for p in SUITE if p.name != "verilator"
    )


def test_xgboost_extremes():
    xgb = get_profile("xgboost")
    assert xgb.random_branch_frac >= 0.5  # sea of unpredictable branches
    assert xgb.w_tree > 0  # decision-tree regions
    assert xgb.zipf_alpha < 0.2  # little reuse
    assert xgb.load_dependence_fraction is not None  # slow resolution


def test_profiles_are_frozen():
    import dataclasses

    with pytest.raises(dataclasses.FrozenInstanceError):
        get_profile("mysql").bias = 0.5  # type: ignore[misc]
