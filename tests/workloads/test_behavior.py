"""Branch-outcome behaviour determinism and statistics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.behavior import (
    AlwaysTaken,
    BiasedBehavior,
    LoopBehavior,
    PatternBehavior,
    PhasedBehavior,
    RotatingTargets,
    WeightedTargets,
    ZipfTargets,
    mix64,
    unit_hash,
)


def test_mix64_deterministic_and_bounded():
    assert mix64(12345) == mix64(12345)
    assert 0 <= mix64(999) < 2**64


def test_unit_hash_in_unit_interval():
    for i in range(100):
        assert 0.0 <= unit_hash(42, i) < 1.0


def test_unit_hash_random_access():
    # Random access: value at index i independent of query order.
    forward = [unit_hash(7, i) for i in range(10)]
    backward = [unit_hash(7, i) for i in reversed(range(10))]
    assert forward == list(reversed(backward))


def test_always_taken():
    b = AlwaysTaken()
    assert all(b.taken(i) for i in range(10))


def test_biased_behavior_rate():
    b = BiasedBehavior(seed=3, p_taken=0.9)
    rate = sum(b.taken(i) for i in range(5000)) / 5000
    assert 0.87 < rate < 0.93


def test_biased_behavior_deterministic():
    a = BiasedBehavior(seed=3, p_taken=0.5)
    b = BiasedBehavior(seed=3, p_taken=0.5)
    assert [a.taken(i) for i in range(50)] == [b.taken(i) for i in range(50)]


def test_biased_behavior_seed_matters():
    a = BiasedBehavior(seed=3, p_taken=0.5)
    b = BiasedBehavior(seed=4, p_taken=0.5)
    assert [a.taken(i) for i in range(64)] != [b.taken(i) for i in range(64)]


def test_loop_behavior_trip_count():
    b = LoopBehavior(trip_count=4)
    outcomes = [b.taken(i) for i in range(8)]
    assert outcomes == [True, True, True, False, True, True, True, False]


def test_loop_behavior_trip_one_never_taken():
    b = LoopBehavior(trip_count=1)
    assert not any(b.taken(i) for i in range(5))


def test_pattern_behavior_repeats():
    b = PatternBehavior(seed=0, pattern=0b1010, length=4, noise=0.0)
    outcomes = [b.taken(i) for i in range(8)]
    assert outcomes == [False, True, False, True] * 2


def test_pattern_behavior_noise_flips_some():
    clean = PatternBehavior(seed=9, pattern=0b1111, length=4, noise=0.0)
    noisy = PatternBehavior(seed=9, pattern=0b1111, length=4, noise=0.3)
    flips = sum(
        clean.taken(i) != noisy.taken(i) for i in range(2000)
    )
    assert 400 < flips < 800  # ~30%


def test_phased_behavior_switches():
    b = PhasedBehavior(AlwaysTaken(), LoopBehavior(1), phase_length=4)
    assert all(b.taken(i) for i in range(4))
    assert not any(b.taken(i) for i in range(4, 8))
    assert all(b.taken(i) for i in range(8, 12))


def test_weighted_targets_hot_fraction():
    b = WeightedTargets(seed=5, hot_fraction=0.8)
    picks = [b.select(i, 5) for i in range(5000)]
    hot_rate = picks.count(0) / len(picks)
    assert 0.77 < hot_rate < 0.83
    assert all(0 <= p < 5 for p in picks)


def test_weighted_targets_single_target():
    b = WeightedTargets(seed=5, hot_fraction=0.8)
    assert b.select(123, 1) == 0


def test_rotating_targets_cycles():
    b = RotatingTargets()
    assert [b.select(i, 3) for i in range(6)] == [0, 1, 2, 0, 1, 2]


def test_zipf_targets_bounds():
    b = ZipfTargets(seed=11, alpha=1.0)
    picks = [b.select(i, 50) for i in range(2000)]
    assert all(0 <= p < 50 for p in picks)


def test_zipf_concentration_varies_with_alpha():
    flat = ZipfTargets(seed=11, alpha=0.0)
    skewed = ZipfTargets(seed=11, alpha=1.0)
    flat_head = sum(flat.select(i, 50) < 5 for i in range(3000))
    skewed_head = sum(skewed.select(i, 50) < 5 for i in range(3000))
    assert skewed_head > flat_head * 1.5


@given(st.integers(min_value=2, max_value=64), st.integers(min_value=0, max_value=10_000))
def test_loop_behavior_exactly_one_exit_per_trip(trip, start):
    b = LoopBehavior(trip_count=trip)
    window = [b.taken(start * trip + i) for i in range(trip)]
    assert window.count(False) == 1
    assert window[-1] is False


@given(
    st.integers(min_value=0, max_value=2**32),
    st.integers(min_value=1, max_value=32),
    st.integers(min_value=0, max_value=1000),
)
def test_weighted_select_always_in_range(seed, num_targets, occurrence):
    b = WeightedTargets(seed=seed, hot_fraction=0.8)
    assert 0 <= b.select(occurrence, num_targets) < num_targets


@given(
    st.integers(min_value=0, max_value=2**32),
    st.floats(min_value=0.0, max_value=1.2),
    st.integers(min_value=1, max_value=500),
    st.integers(min_value=0, max_value=1000),
)
def test_zipf_select_always_in_range(seed, alpha, num_targets, occurrence):
    b = ZipfTargets(seed=seed, alpha=alpha)
    assert 0 <= b.select(occurrence, num_targets) < num_targets
