"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_workloads(capsys):
    assert main(["list-workloads"]) == 0
    out = capsys.readouterr().out
    assert "xgboost" in out and "verilator" in out


def test_list_configs(capsys):
    assert main(["list-configs"]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "udp" in out


def test_run_command(capsys):
    assert main(["run", "-w", "mediawiki", "-c", "baseline", "-n", "2500"]) == 0
    out = capsys.readouterr().out
    assert "ipc" in out
    assert "mediawiki / baseline" in out


def test_run_with_counters(capsys):
    assert main(["run", "-w", "mediawiki", "-c", "baseline", "-n", "2500",
                 "--counters"]) == 0
    out = capsys.readouterr().out
    assert "retired_instructions" in out


def test_compare_command(capsys):
    assert main([
        "compare", "-w", "mediawiki", "-c", "baseline,perfect-icache",
        "-n", "2500",
    ]) == 0
    out = capsys.readouterr().out
    assert "perfect-icache IPC" in out
    assert "%" in out


def test_techniques_list(capsys):
    assert main(["techniques", "list"]) == 0
    out = capsys.readouterr().out
    for kind in ("fdip", "eip", "mana", "shadow-btb", "sw-profile"):
        assert kind in out
    assert "btb-hooks" in out  # capability flags are rendered
    assert "storage_bytes=8192" in out  # params defaults are rendered


def test_techniques_list_tracks_registry(capsys):
    from dataclasses import dataclass

    from repro.prefetchers import registry

    @dataclass(frozen=True)
    class _P:
        pass

    registry.register(
        registry.Technique(
            name="zz-test-only",
            summary="dynamically registered",
            params_cls=_P,
            build=lambda params, program, hooks: None,
        )
    )
    try:
        assert main(["techniques", "list"]) == 0
        assert "zz-test-only" in capsys.readouterr().out
    finally:
        registry.unregister("zz-test-only")


def test_compare_prefetcher_flag(capsys):
    assert main([
        "compare", "-w", "mediawiki", "-c", "baseline",
        "--prefetcher", "mana", "--prefetcher", "shadow-btb", "-n", "2500",
    ]) == 0
    out = capsys.readouterr().out
    assert "mana IPC" in out
    assert "shadow-btb IPC" in out


def test_compare_prefetcher_unknown_kind_rejected(capsys):
    assert main([
        "compare", "-w", "mediawiki", "-c", "baseline",
        "--prefetcher", "bogus", "-n", "2500",
    ]) == 2
    err = capsys.readouterr().err
    assert "bogus" in err and "registered kinds" in err


def test_figure_fig1(capsys):
    assert main(["figure", "fig1", "-w", "mediawiki", "-n", "2500"]) == 0
    out = capsys.readouterr().out
    assert "perfect icache" in out


def test_figure_table3(capsys):
    assert main(["figure", "table3", "-w", "mediawiki", "-n", "2500"]) == 0
    out = capsys.readouterr().out
    assert "optimal FTQ" in out


def test_trace_command(tmp_path, capsys):
    out_file = tmp_path / "t.jsonl"
    assert main(["trace", "-w", "mediawiki", "--blocks", "100",
                 "-o", str(out_file)]) == 0
    assert out_file.exists()
    assert "wrote 100 blocks" in capsys.readouterr().out


def test_unknown_config_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "-c", "nonsense"])


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "fig99"])


def test_characterize_command(capsys):
    assert main(["characterize", "-w", "mediawiki", "-n", "2500"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out


def test_reuse_command(capsys):
    assert main(["reuse", "-w", "mediawiki", "--blocks", "500"]) == 0
    out = capsys.readouterr().out
    assert "32KiB L1I" in out
    assert "miss rate" in out


def test_run_with_sampling(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert main([
        "run", "-w", "mediawiki", "-c", "baseline", "-n", "4000",
        "--sample", "2", "--sample-length", "300", "--sample-warmup", "100",
    ]) == 0
    out = capsys.readouterr().out
    assert "sampled: 2 intervals x 300 instructions" in out
    assert "rel. CI95" in out


def test_compare_with_sampling(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert main([
        "compare", "-w", "mediawiki", "-c", "baseline,perfect-icache",
        "-n", "4000", "--sample", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "perfect-icache IPC" in out


def test_cache_info_human_readable(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["run", "-w", "mediawiki", "-c", "baseline", "-n", "2500"]) == 0
    capsys.readouterr()
    assert main(["cache", "info"]) == 0
    out = capsys.readouterr().out
    assert "KiB" in out  # human-readable size ...
    assert "bytes)" in out  # ... next to the raw byte count
    assert "total size" in out


def test_cache_clear_rejects_unknown_class(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["cache", "clear", "--class", "checkpoint"]) == 2
    err = capsys.readouterr().err
    assert "unknown cache class 'checkpoint'" in err
    assert "results, programs, checkpoints, all" in err


def test_cache_clear_accepts_comma_separated_classes(
    tmp_path, monkeypatch, capsys
):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["run", "-w", "mediawiki", "-c", "baseline", "-n", "2500"]) == 0
    capsys.readouterr()
    assert main(["cache", "clear", "--class", "results,checkpoints"]) == 0
    out = capsys.readouterr().out
    assert "(results, checkpoints)" in out


def test_report_command(tmp_path, capsys):
    out_file = tmp_path / "r.md"
    assert main([
        "report", "-o", str(out_file), "-w", "mediawiki",
        "--sweep-workloads", "mediawiki", "-n", "2000",
    ]) == 0
    assert out_file.exists()
    assert out_file.read_text().startswith("# EXPERIMENTS")
