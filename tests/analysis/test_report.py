"""Markdown report generation (tiny scale)."""

import pytest

from repro.analysis.report import build_report, write_report


@pytest.fixture(scope="module")
def report_text():
    return build_report(
        workloads=["mediawiki"],
        instructions=2_500,
        sweep_workloads=["mediawiki"],
    )


def test_report_has_all_sections(report_text):
    for heading in (
        "Fig 1", "Fig 3", "Fig 4", "Fig 5", "Fig 6", "Fig 8",
        "Table III", "Fig 11", "Fig 12", "Fig 13", "Fig 14", "Fig 15",
        "Fig 16", "Fig 17",
    ):
        assert heading in report_text, f"missing section {heading}"


def test_report_cites_paper_numbers(report_text):
    assert "+16.1%" in report_text  # UDP headline
    assert "+37.2%" in report_text  # UFTQ headline


def test_report_contains_measured_tables(report_text):
    assert "mediawiki" in report_text
    assert "```" in report_text


def test_write_report(tmp_path):
    path = tmp_path / "r.md"
    write_report(
        str(path),
        workloads=["mediawiki"],
        instructions=2_000,
        sweep_workloads=["mediawiki"],
    )
    assert path.read_text().startswith("# EXPERIMENTS")
