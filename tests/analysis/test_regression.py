"""Regression re-fit recovers known coefficients."""

import pytest

from repro.analysis.regression import fit_regression, training_rows
from repro.core.uftq import regression_depth
from repro.sim.metrics import SimResult


def test_fit_recovers_synthetic_coefficients():
    truth = (-0.3, 0.6, 0.01, 0.02, -0.005)
    rows = []
    for qd_aur in (8, 16, 24, 32, 48, 64):
        for qd_atr in (8, 24, 48, 96):
            rows.append((qd_aur, qd_atr, regression_depth(qd_aur, qd_atr, truth)))
    fitted = fit_regression(rows)
    for a, b in zip(fitted, truth):
        assert abs(a - b) < 1e-6


def test_fit_requires_enough_samples():
    with pytest.raises(ValueError):
        fit_regression([(1.0, 1.0, 1.0)] * 3)


def _result(utility, timeliness, ipc):
    return SimResult(
        "w",
        "c",
        counters={
            "cycles": 1000,
            "retired_instructions": int(ipc * 1000),
            "prefetch_useful": int(utility * 100),
            "prefetch_useless": int((1 - utility) * 100),
            "atr_icache_hits": int(timeliness * 100),
            "atr_mshr_hits": int((1 - timeliness) * 100),
        },
    )


def test_training_rows_structure():
    sweep = {
        "app": {
            8: _result(0.9, 0.5, 1.0),
            16: _result(0.8, 0.7, 1.2),
            32: _result(0.6, 0.8, 1.1),
        }
    }
    rows = training_rows(sweep, target_aur=0.65, target_atr=0.75)
    assert len(rows) == 1
    qd_aur, qd_atr, optimal = rows[0]
    assert qd_aur == 16  # deepest depth still meeting the utility target
    assert qd_atr == 32  # shallowest depth meeting the timeliness target
    assert optimal == 16  # IPC-optimal depth
