"""Speedup arithmetic."""

import math

from repro.analysis.speedup import pct, pearson, speedups_over, summarize_speedups
from repro.sim.metrics import SimResult


def make_result(ipc):
    return SimResult("w", "c", counters={"cycles": 1000,
                                         "retired_instructions": int(ipc * 1000)})


def test_pct():
    assert abs(pct(1.036) - 3.6) < 1e-9
    assert pct(1.0) == 0.0
    assert pct(0.9) < 0


def test_speedups_over():
    results = {"a": make_result(2.0)}
    baselines = {"a": make_result(1.0)}
    assert speedups_over(results, baselines)["a"] == 2.0


def test_summarize():
    summary = summarize_speedups({"a": 1.1, "b": 0.9})
    assert abs(summary["max_pct"] - 10.0) < 1e-9
    assert abs(summary["min_pct"] - -10.0) < 1e-6
    assert abs(summary["geomean_pct"] - (math.sqrt(1.1 * 0.9) - 1) * 100) < 1e-9


def test_summarize_empty():
    assert summarize_speedups({}) == {"max_pct": 0.0, "min_pct": 0.0,
                                      "geomean_pct": 0.0}


def test_pearson_perfect_positive():
    assert abs(pearson([1, 2, 3], [2, 4, 6]) - 1.0) < 1e-12


def test_pearson_perfect_negative():
    assert abs(pearson([1, 2, 3], [3, 2, 1]) + 1.0) < 1e-12


def test_pearson_uncorrelated_constant():
    assert pearson([1, 2, 3], [5, 5, 5]) == 0.0


def test_pearson_degenerate_inputs():
    assert pearson([], []) == 0.0
    assert pearson([1], [1]) == 0.0
    assert pearson([1, 2], [1]) == 0.0
