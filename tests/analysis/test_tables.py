"""ASCII table rendering."""

from repro.analysis.tables import format_series, format_table


def test_format_table_alignment():
    out = format_table(["a", "bbbb"], [[1, 2.5], ["xx", 3.25]])
    lines = out.splitlines()
    assert lines[0].startswith("a")
    assert "2.500" in out
    assert "3.250" in out
    assert len(lines) == 4  # header, rule, two rows


def test_format_table_title():
    out = format_table(["x"], [[1]], title="T")
    assert out.splitlines()[0] == "T"


def test_format_table_wide_cells():
    out = format_table(["x"], [["longvalue"]])
    header, rule, row = out.splitlines()
    assert len(rule) >= len("longvalue")


def test_format_series():
    out = format_series("depth", [8, 16], {"a": [1.0, 2.0], "b": [3.0, 4.0]})
    assert "depth" in out
    assert "1.000" in out and "4.000" in out
    assert len(out.splitlines()) == 4


def test_format_series_title():
    out = format_series("x", [1], {"s": [0.5]}, title="Fig N")
    assert out.splitlines()[0] == "Fig N"
