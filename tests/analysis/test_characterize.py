"""Workload characterization (Table I equivalent)."""

import pytest

from repro.analysis.characterize import (
    WorkloadCharacter,
    characterization_table,
    characterize_suite,
    validate_characteristics,
)


@pytest.fixture(scope="module")
def characters():
    return characterize_suite(
        ["mediawiki", "xgboost", "verilator", "gcc"], instructions=4_000
    )


def test_measure_fields(characters):
    c = characters["mediawiki"]
    assert c.footprint_kib > 32
    assert c.touched_kib > 0
    assert c.ipc > 0


def test_table_rendering(characters):
    table = characterization_table(characters)
    assert "Table I" in table
    for name in characters:
        assert name in table


def test_validation_passes_on_real_suite(characters):
    problems = validate_characteristics(characters)
    assert problems == [], problems


def test_validation_catches_violations():
    fake = {
        "verilator": WorkloadCharacter("verilator", 40, 10, 1, 0.9, 1, 1, 1.0),
        "gcc": WorkloadCharacter("gcc", 400, 60, 5, 0.8, 10, 3, 0.9),
    }
    problems = validate_characteristics(fake)
    assert any("verilator" in p for p in problems)


def test_validation_catches_tiny_footprint():
    fake = {"x": WorkloadCharacter("x", 8, 4, 1, 0.9, 1, 1, 1.0)}
    assert any("32KiB" in p for p in validate_characteristics(fake))


def test_validation_catches_implausible_ipc():
    fake = {"x": WorkloadCharacter("x", 64, 40, 1, 0.9, 1, 1, 9.5)}
    assert any("IPC" in p for p in validate_characteristics(fake))
