"""Multi-seed statistics."""

import pytest

from repro.analysis.stats import SpeedupStats, multi_seed_speedup
from repro.sim.presets import baseline_config, perfect_icache_config


def test_stats_mean_and_ci():
    stats = SpeedupStats("w", [1.0, 1.1, 1.2])
    assert abs(stats.mean - 1.1) < 1e-12
    lo, hi = stats.ci95
    assert lo < 1.1 < hi


def test_stats_single_sample():
    stats = SpeedupStats("w", [1.05])
    assert stats.stdev == 0.0
    assert stats.ci95 == (1.05, 1.05)


def test_consistent_sign():
    assert SpeedupStats("w", [1.01, 1.2]).consistent_sign()
    assert SpeedupStats("w", [0.9, 0.99]).consistent_sign()
    assert not SpeedupStats("w", [0.9, 1.1]).consistent_sign()


def test_mean_pct():
    assert abs(SpeedupStats("w", [1.05, 1.15]).mean_pct - 10.0) < 1e-9


def test_multi_seed_requires_seeds():
    with pytest.raises(ValueError):
        multi_seed_speedup("mediawiki", baseline_config(1000),
                           baseline_config(1000), [])


def test_multi_seed_perfect_icache_always_wins():
    stats = multi_seed_speedup(
        "mediawiki",
        baseline_config(3_000),
        perfect_icache_config(3_000),
        seeds=[1, 2],
    )
    assert len(stats.ratios) == 2
    assert stats.mean >= 0.97


def test_ipc_sampling_error():
    from repro.analysis.stats import ipc_sampling_error
    from repro.sim.metrics import SimResult

    def result(retired, cycles):
        return SimResult("w", "c", counters={
            "retired_instructions": retired, "cycles": cycles,
        })

    reference = result(1000, 1000)  # IPC 1.0
    assert ipc_sampling_error(result(1000, 1000), reference) == 0.0
    assert ipc_sampling_error(result(980, 1000), reference) == pytest.approx(0.02)
    assert ipc_sampling_error(result(1030, 1000), reference) == pytest.approx(0.03)
    zero = result(0, 0)
    assert ipc_sampling_error(result(980, 1000), zero) == 0.0
