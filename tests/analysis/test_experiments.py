"""Experiment harness returns well-formed structures at tiny scale."""

import pytest

from repro.analysis import experiments

TINY = dict(workloads=["mediawiki"], instructions=3_000)


@pytest.fixture(scope="module")
def tiny_sweep():
    return experiments.ftq_sweep_suite(
        ["mediawiki"], depths=[16, 32], instructions=3_000
    )


def test_fig1_structure():
    out = experiments.fig1_perfect_icache(**TINY)
    assert out["experiment"] == "fig1"
    assert "mediawiki" in out["ratios"]
    assert "table" in out and "mediawiki" in out["table"]


def test_sweep_structure(tiny_sweep):
    assert sorted(tiny_sweep["mediawiki"]) == [16, 32]


def test_fig3_normalized_to_32(tiny_sweep):
    out = experiments.fig3_ftq_sweep(tiny_sweep)
    depths = out["depths"]
    idx32 = depths.index(32)
    assert out["speedup_pct"]["mediawiki"][idx32] == pytest.approx(0.0)
    assert out["optimal_depth"]["mediawiki"] in depths


def test_fig4_fig5_fig6_ranges(tiny_sweep):
    for fn, key in (
        (experiments.fig4_timeliness, "timeliness"),
        (experiments.fig5_on_path_ratio, "on_path_ratio"),
        (experiments.fig6_usefulness, "utility"),
    ):
        out = fn(tiny_sweep)
        for values in out[key].values():
            assert all(0.0 <= v <= 1.0 for v in values)


def test_fig8_occupancy_bounded(tiny_sweep):
    out = experiments.fig8_occupancy(tiny_sweep)
    for depth, occ in zip(out["depths"], out["occupancy"]["mediawiki"]):
        assert 0.0 <= occ <= depth


def test_table3_structure(tiny_sweep):
    out = experiments.table3_optimal_ftq(tiny_sweep)
    depth, utility, timeliness = out["optima"]["mediawiki"]
    assert depth in (16, 32)
    assert 0 <= utility <= 1 and 0 <= timeliness <= 1
    assert set(out["correlations"]) == {
        "utility_vs_optimal", "timeliness_vs_optimal"
    }


def test_fig11_structure():
    out = experiments.fig11_uftq_speedup(**TINY)
    assert set(out["speedups"]) == {"uftq-aur", "uftq-atr", "uftq-atr-aur", "opt"}
    assert "mediawiki" in out["speedups"]["opt"]
    fig12 = experiments.fig12_uftq_mpki(out)
    assert "mediawiki" in fig12["mpki"]


def test_fig13_structure():
    out = experiments.fig13_udp_speedup(**TINY)
    assert set(out["speedups"]) == {
        "udp", "infinite", "icache-40k", "eip-8k", "mana-8k", "shadow-btb"
    }
    fig14 = experiments.fig14_udp_mpki(out)
    fig15 = experiments.fig15_lost_instructions(out)
    assert "mediawiki" in fig14["mpki"]
    assert all(v >= 0 for v in fig15["lost_per_kinstr"]["mediawiki"].values())


def test_fig16_structure():
    out = experiments.fig16_btb_sensitivity(
        ["mediawiki"], btb_sizes=[4096, 8192], instructions=3_000
    )
    assert out["btb_sizes"] == [4096, 8192]
    assert len(out["speedup_pct"]["mediawiki"]) == 2


def test_fig17_structure():
    out = experiments.fig17_ftq_sensitivity(
        ["mediawiki"], depths=[16, 32], instructions=3_000
    )
    assert out["depths"] == [16, 32]
    assert len(out["speedup_pct"]["mediawiki"]) == 2
