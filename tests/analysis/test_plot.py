"""ASCII chart rendering."""

from repro.analysis.plot import ascii_chart, chart_experiment, sparkline


def test_sparkline_levels():
    line = sparkline([0.0, 0.5, 1.0])
    assert len(line) == 3
    assert line[0] == "▁"
    assert line[-1] == "█"


def test_sparkline_flat_series():
    assert sparkline([2.0, 2.0, 2.0]) == "▄▄▄"


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_ascii_chart_contains_markers_and_legend():
    out = ascii_chart([1, 2, 3], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
                      width=30, height=8)
    assert "*" in out and "o" in out
    assert "* a" in out and "o b" in out


def test_ascii_chart_axis_labels():
    out = ascii_chart([10, 90], {"s": [0.5, 2.5]}, width=20, height=5,
                      title="T")
    assert out.splitlines()[0] == "T"
    assert "2.5" in out and "0.5" in out
    assert "10" in out and "90" in out


def test_ascii_chart_no_data():
    assert ascii_chart([], {}) == "(no data)"


def test_chart_experiment():
    result = {
        "experiment": "fig3",
        "depths": [8, 16, 32],
        "speedup_pct": {"mysql": [-5.0, -2.0, 0.0]},
    }
    out = chart_experiment(result, "speedup_pct")
    assert "fig3" in out
    assert "mysql" in out


def test_chart_experiment_missing_series():
    assert "no chartable" in chart_experiment({"depths": [1]}, "nope")
