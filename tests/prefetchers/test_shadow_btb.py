"""Shadow-branch BTB prefill: fill-path predecode of direct branches."""

import pytest

from repro.common.counters import Counters
from repro.common.errors import ConfigError
from repro.prefetchers.base import FrontendHooks
from repro.prefetchers.shadow_btb import ShadowBTBParams, ShadowBranchPrefiller
from repro.workloads.behavior import BiasedBehavior, RotatingTargets
from repro.workloads.program import BasicBlock, Branch, BranchKind, Program


def make_program():
    """Four two-instruction blocks in one 64B line starting at 0x1000."""
    blocks = [
        BasicBlock(0x1000, 2, Branch(0x1004, BranchKind.JUMP, target=0x1010)),
        BasicBlock(
            0x1008,
            2,
            Branch(
                0x100C,
                BranchKind.COND,
                target=0x1000,
                direction=BiasedBehavior(1, 0.5),
            ),
        ),
        BasicBlock(
            0x1010,
            2,
            Branch(
                0x1014,
                BranchKind.INDIRECT,
                targets=(0x1000,),
                target_behavior=RotatingTargets(),
            ),
        ),
        BasicBlock(0x1018, 2, Branch(0x101C, BranchKind.RET)),
    ]
    return Program(blocks)


def make_prefiller(program=None, **params):
    program = program or make_program()
    btb = {}
    hooks = FrontendHooks(
        program=program,
        counters=Counters(),
        btb_fill=lambda pc, kind, target: btb.__setitem__(pc, (kind, target)),
        btb_contains=lambda pc: pc in btb,
    )
    prefiller = ShadowBranchPrefiller(ShadowBTBParams(**params), hooks)
    return prefiller, btb, hooks.counters


def test_requires_btb_hooks():
    hooks = FrontendHooks(program=make_program(), counters=Counters())
    with pytest.raises(ConfigError):
        ShadowBranchPrefiller(ShadowBTBParams(), hooks)


def test_emits_no_line_prefetches():
    prefiller, _, _ = make_prefiller()
    assert prefiller.on_demand_access(0x1000, hit=False, on_path=True) == []


def test_prefills_direct_branches_skips_indirect():
    prefiller, btb, counters = make_prefiller()
    prefiller.on_line_filled(0x1000)
    assert 0x1004 in btb and 0x100C in btb  # JUMP and COND prefilled
    assert 0x1014 not in btb  # indirect: target unknowable at predecode
    assert btb[0x101C] == (BranchKind.RET, 0)  # RET targets come from the RAS
    assert counters["shadow_btb_prefills"] == 3
    assert counters["shadow_btb_branches_found"] == 3
    assert counters["shadow_btb_lines_scanned"] == 1


def test_known_branches_not_refilled():
    prefiller, btb, counters = make_prefiller()
    btb[0x1004] = "pre-existing"
    prefiller.on_line_filled(0x1000)
    assert btb[0x1004] == "pre-existing"
    assert counters["shadow_btb_branches_found"] == 3
    assert counters["shadow_btb_prefills"] == 2


def test_prefill_budget_respected():
    prefiller, btb, counters = make_prefiller(max_prefills_per_fill=1)
    prefiller.on_line_filled(0x1000)
    assert counters["shadow_btb_prefills"] == 1
    assert list(btb) == [0x1004]  # scan stops at the budget


def test_lines_outside_image_ignored():
    prefiller, btb, counters = make_prefiller()
    prefiller.on_line_filled(0x8000)
    assert not btb
    assert counters["shadow_btb_lines_scanned"] == 0


def test_scan_clamped_to_one_line():
    # A line covering only the tail blocks must not rediscover earlier ones.
    blocks = [
        BasicBlock(0x1000, 16, Branch(0x103C, BranchKind.JUMP, target=0x1040)),
        BasicBlock(0x1040, 16, Branch(0x107C, BranchKind.JUMP, target=0x1000)),
    ]
    prefiller, btb, _ = make_prefiller(program=Program(blocks))
    prefiller.on_line_filled(0x1040)
    assert list(btb) == [0x107C]


def test_params_validate_rejects_zero_budget():
    with pytest.raises(ConfigError):
        ShadowBTBParams(max_prefills_per_fill=0).validate()
