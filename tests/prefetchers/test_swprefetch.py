"""Profile-guided software prefetching."""

from repro.prefetchers.swprefetch import (
    ProfileGuidedPrefetcher,
    build_for_program,
    profile_instruction_misses,
)
from repro.workloads import micro
from repro.workloads.synth import synthesize
from repro.workloads.profiles import get_profile


def test_profiling_finds_triggers_on_cold_code():
    program = micro.long_straight(num_blocks=2048, block_instrs=8)
    profile = profile_instruction_misses(program, num_blocks=1_500,
                                         prefetch_distance=4)
    assert profile, "a cold straight-line walk must produce miss mappings"
    for trigger, targets in profile.items():
        assert targets
        assert trigger not in targets


def test_tiny_resident_loop_needs_no_prefetching():
    program = micro.straight_loop()
    profile = profile_instruction_misses(program, num_blocks=500)
    assert profile == {}  # one line, misses once, no trigger history yet


def test_targets_bounded():
    program = synthesize(get_profile("mediawiki"), seed=1)
    profile = profile_instruction_misses(program, num_blocks=3_000,
                                         max_targets_per_trigger=2)
    assert all(len(t) <= 2 for t in profile.values())


def test_prefetcher_fires_on_trigger():
    p = ProfileGuidedPrefetcher({0x1000: [0x5000, 0x6000]})
    assert p.on_demand_access(0x1000, hit=True, on_path=True) == [0x5000, 0x6000]
    assert p.on_demand_access(0x2000, hit=True, on_path=True) == []
    assert p.triggered == 2


def test_storage_reflects_profile_size():
    p = ProfileGuidedPrefetcher({0x1000: [0x5000], 0x2000: [0x6000, 0x7000]})
    assert p.storage_bytes() == (4 + 4) + (4 + 8)
    assert p.num_triggers == 2


def test_build_for_program():
    program = synthesize(get_profile("mediawiki"), seed=1)
    p = build_for_program(program, num_blocks=3_000)
    assert isinstance(p, ProfileGuidedPrefetcher)


def test_simulation_with_sw_profile():
    from repro.sim.presets import sw_profile_config
    from repro.sim.runner import run_workload

    config = sw_profile_config(3_000, profile_blocks=3_000)
    result = run_workload("mediawiki", config, "sw")
    assert result.retired >= 3_000
