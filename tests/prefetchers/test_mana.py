"""MANA comparator: region training, chained replay, HOBPT pressure."""

import pytest

from repro.common.errors import ConfigError
from repro.prefetchers.mana import MANAParams, MANAPrefetcher

L = 64


def make_mana(**overrides):
    defaults = dict(storage_bytes=8 * 1024, region_lines=8, lookahead_records=3)
    defaults.update(overrides)
    return MANAPrefetcher(MANAParams(**defaults))


def access(mana, *lines):
    out = []
    for line in lines:
        out = mana.on_demand_access(line * L, hit=False, on_path=True)
    return out


def test_no_replay_before_training():
    mana = make_mana()
    assert access(mana, 10) == []


def test_region_footprint_replayed_on_trigger():
    mana = make_mana()
    # Stay inside region 10 (lines 10, 11, 13), then jump far to commit it.
    access(mana, 10, 11, 13, 500)
    out = access(mana, 10)
    assert 11 * L in out and 13 * L in out
    assert 12 * L not in out  # never touched: not in the footprint


def test_successor_chain_followed():
    mana = make_mana()
    access(mana, 10, 11, 500, 501, 900)  # region 10 -> region 500 -> 900
    out = access(mana, 10)
    assert 500 * L in out  # successor of region 10
    assert 501 * L in out  # region 500's footprint, via lookahead
    assert mana.triggered == len(out)


def test_lookahead_bounds_chain_depth():
    mana = make_mana(lookahead_records=1)
    access(mana, 10, 500, 900, 1300)
    out = access(mana, 10)
    assert 500 * L in out
    assert 900 * L not in out  # second record is past the lookahead


def test_capacity_is_storage_bounded():
    mana = make_mana(storage_bytes=1024)
    assert mana.capacity == 1024 // mana._record_bytes
    for i in range(3 * mana.capacity):
        access(mana, 10_000 + 20 * i)  # each access far enough to commit
    assert mana.table_occupancy <= mana.capacity
    assert mana.storage_bytes() <= 1024 + mana._record_bytes


def test_hob_eviction_drops_dependent_records():
    # One-entry HOBPT: training a trigger in a new 4KiB granule evicts the
    # old pattern and every record that depended on it.
    mana = make_mana(hob_entries=1, hob_shift=12)
    access(mana, 10, 500)  # commits record for trigger line 10 (granule 0)
    assert mana.table_occupancy == 1
    access(mana, 5_000)  # commits region 500: its granule differs -> eviction
    assert mana.hob_evictions == 1
    assert access(mana, 10) == []  # record for line 10 is gone


def test_counters_wired():
    class Fake:
        def __init__(self):
            self.bumps = {}

        def bump(self, name, by=1):
            self.bumps[name] = self.bumps.get(name, 0) + by

    counters = Fake()
    mana = MANAPrefetcher(MANAParams(), counters=counters)
    mana.on_demand_access(10 * L, hit=False, on_path=True)
    mana.on_demand_access(500 * L, hit=False, on_path=True)
    assert counters.bumps["mana_records_trained"] == 1
    mana.on_demand_access(10 * L, hit=False, on_path=True)
    assert counters.bumps["mana_replayed_lines"] >= 1


@pytest.mark.parametrize(
    "bad",
    [
        dict(storage_bytes=0),
        dict(region_lines=1),
        dict(lookahead_records=0),
        dict(hob_entries=0),
        dict(hob_shift=6),
    ],
)
def test_params_validate_rejects(bad):
    with pytest.raises(ConfigError):
        MANAParams(**bad).validate()
