"""Next-line prefetcher."""

from repro.prefetchers.base import NullPrefetcher
from repro.prefetchers.next_line import NextLinePrefetcher


def test_prefetches_on_miss():
    p = NextLinePrefetcher()
    assert p.on_demand_access(0x1000, hit=False, on_path=True) == [0x1040]


def test_silent_on_hit():
    p = NextLinePrefetcher()
    assert p.on_demand_access(0x1000, hit=True, on_path=True) == []


def test_degree():
    p = NextLinePrefetcher(degree=3)
    out = p.on_demand_access(0, hit=False, on_path=True)
    assert out == [64, 128, 192]


def test_null_prefetcher_inert():
    p = NullPrefetcher()
    assert p.on_demand_access(0x1000, hit=False, on_path=True) == []
    assert p.storage_bytes() == 0
