"""Technique registry: registration rules, config round-trips, cache keys."""

from dataclasses import FrozenInstanceError, dataclass

import pytest

from repro.common.config import PrefetcherConfig, SimConfig, TechniqueConfig
from repro.common.errors import ConfigError
from repro.prefetchers import registry
from repro.prefetchers.eip import EIPParams
from repro.prefetchers.mana import MANAParams
from repro.prefetchers.swprefetch import SWProfileParams
from repro.sim.engine import ResultCache, spec_for


@dataclass(frozen=True)
class _ToyParams:
    degree: int = 2

    def validate(self):
        if self.degree <= 0:
            raise ConfigError("toy degree must be positive")


def _build_toy(params, program, hooks):
    return ("toy-instance", params.degree)


@pytest.fixture
def toy_technique():
    technique = registry.register(
        registry.Technique(
            name="toy",
            summary="test-only technique",
            params_cls=_ToyParams,
            build=_build_toy,
        )
    )
    yield technique
    registry.unregister("toy")


def test_builtins_registered():
    assert set(registry.names()) >= {
        "fdip", "none", "next-line", "eip", "sw-profile", "mana", "shadow-btb"
    }


def test_register_build_round_trip(toy_technique):
    technique = registry.get_technique("toy")
    assert technique is toy_technique
    built = technique.build(_ToyParams(degree=5), None, None)
    assert built == ("toy-instance", 5)


def test_register_rejects_duplicate(toy_technique):
    with pytest.raises(ConfigError, match="already registered"):
        registry.register(toy_technique)
    registry.register(toy_technique, replace=True)  # explicit replace is fine


def test_register_rejects_non_frozen_params():
    @dataclass
    class Mutable:
        x: int = 1

    with pytest.raises(ConfigError, match="frozen"):
        registry.register(
            registry.Technique(
                name="mutable", summary="", params_cls=Mutable, build=_build_toy
            )
        )
    with pytest.raises(ConfigError, match="dataclass"):
        registry.register(
            registry.Technique(
                name="plain", summary="", params_cls=int, build=_build_toy
            )
        )


def test_unknown_kind_error_names_registered_kinds():
    with pytest.raises(ConfigError) as err:
        registry.get_technique("magic")
    message = str(err.value)
    assert "magic" in message
    for kind in ("fdip", "eip", "mana", "shadow-btb"):
        assert kind in message


def test_default_params():
    assert registry.default_params("mana") == MANAParams()
    assert registry.default_params("eip") == EIPParams()


def test_capabilities_describe():
    assert registry.get_technique("shadow-btb").capabilities.describe() == (
        "fdip,btb-hooks,fill-observer"
    )
    assert registry.get_technique("none").capabilities.describe() == "-"


# -- TechniqueConfig ------------------------------------------------------------


def test_technique_config_normalizes_default_params():
    assert TechniqueConfig(kind="mana").params == MANAParams()
    assert TechniqueConfig(kind="mana") == TechniqueConfig(
        kind="mana", params=MANAParams()
    )


def test_technique_config_is_hashable_and_frozen():
    config = TechniqueConfig(kind="eip", params=EIPParams(storage_bytes=4096))
    assert hash(config) == hash(
        TechniqueConfig(kind="eip", params=EIPParams(storage_bytes=4096))
    )
    with pytest.raises(FrozenInstanceError):
        config.kind = "none"


def test_technique_config_validate_checks_params_type():
    bad = TechniqueConfig(kind="mana", params=EIPParams())
    with pytest.raises(ConfigError):
        bad.validate()
    with pytest.raises(ConfigError, match="registered kinds"):
        TechniqueConfig(kind="magic").validate()


def test_sim_config_with_prefetcher_round_trip():
    config = SimConfig().with_prefetcher("mana", MANAParams(storage_bytes=2048))
    config.validate()
    assert config.prefetcher.kind == "mana"
    assert config.prefetcher.params.storage_bytes == 2048
    assert config.prefetcher.capabilities.uses_fdip


# -- engine cache keys ----------------------------------------------------------


def test_cache_key_stable_for_default_vs_explicit_params():
    cache = ResultCache()
    implicit = spec_for("gcc", SimConfig().with_prefetcher("mana"))
    explicit = spec_for(
        "gcc", SimConfig().with_prefetcher("mana", MANAParams())
    )
    assert cache.key_for(implicit) == cache.key_for(explicit)


def test_cache_key_distinguishes_params_and_kinds():
    cache = ResultCache()
    base = spec_for("gcc", SimConfig().with_prefetcher("mana"))
    tweaked = spec_for(
        "gcc", SimConfig().with_prefetcher("mana", MANAParams(storage_bytes=2048))
    )
    other = spec_for("gcc", SimConfig().with_prefetcher("shadow-btb"))
    keys = {cache.key_for(s) for s in (base, tweaked, other)}
    assert len(keys) == 3


# -- legacy shim ----------------------------------------------------------------


def test_prefetcher_config_shim_warns_and_maps_fields():
    with pytest.deprecated_call():
        legacy = PrefetcherConfig(
            kind="eip", eip_storage_bytes=4096, eip_wrong_path_aware=True
        )
    assert isinstance(legacy, TechniqueConfig)
    assert legacy.params == EIPParams(storage_bytes=4096, wrong_path_aware=True)


def test_prefetcher_config_shim_maps_sw_profile():
    with pytest.deprecated_call():
        legacy = PrefetcherConfig(kind="sw-profile", sw_profile_blocks=5_000)
    assert legacy.params == SWProfileParams(profile_blocks=5_000)


def test_prefetcher_config_shim_validates_like_technique_config():
    with pytest.deprecated_call():
        legacy = PrefetcherConfig(kind="magic")
    with pytest.raises(ConfigError):
        legacy.validate()
