"""Entangled instruction prefetcher comparator."""

from repro.prefetchers.eip import EntangledInstructionPrefetcher

L = 64


def make_eip(**overrides):
    defaults = dict(storage_bytes=8 * 1024, entangling_distance=2)
    defaults.update(overrides)
    return EntangledInstructionPrefetcher(**defaults)


def warm(eip, source, miss):
    """Access source, pad to the entangling distance, then miss."""
    eip.on_demand_access(source, hit=True, on_path=True)
    for i in range(eip.entangling_distance):
        eip.on_demand_access(source + (100 + i) * L, hit=True, on_path=True)
    eip.on_demand_access(miss, hit=False, on_path=True)


def test_entangles_and_triggers():
    eip = make_eip()
    warm(eip, 10 * L, 50 * L)
    out = eip.on_demand_access(10 * L, hit=True, on_path=True)
    assert 50 * L in out


def test_no_trigger_before_training():
    eip = make_eip()
    assert eip.on_demand_access(10 * L, hit=True, on_path=True) == []


def test_capacity_is_storage_bounded():
    eip = make_eip(storage_bytes=1024)
    assert eip.capacity == 1024 // 12
    for i in range(1000):
        warm(eip, i * L, (i + 5000) * L)
    assert eip.table_occupancy <= eip.capacity


def test_storage_bytes_reported():
    eip = make_eip(storage_bytes=8 * 1024)
    assert eip.storage_bytes() <= 8 * 1024 + 12


def test_multiple_targets_per_source():
    eip = make_eip(targets_per_entry=2)
    warm(eip, 10 * L, 50 * L)
    warm(eip, 10 * L, 60 * L)
    out = eip.on_demand_access(10 * L, hit=True, on_path=True)
    assert 50 * L in out and 60 * L in out


def test_target_list_bounded():
    eip = make_eip(targets_per_entry=2)
    for target in (50, 60, 70):
        warm(eip, 10 * L, target * L)
    out = eip.on_demand_access(10 * L, hit=True, on_path=True)
    assert len(out) <= 2
    assert 50 * L not in out  # oldest dropped


def test_wrong_path_aware_ignores_off_path():
    eip = make_eip(wrong_path_aware=True)
    eip.on_demand_access(10 * L, hit=True, on_path=False)
    eip.on_demand_access(11 * L, hit=True, on_path=False)
    eip.on_demand_access(50 * L, hit=False, on_path=False)
    assert eip.trained == 0
    assert eip.on_demand_access(10 * L, hit=True, on_path=True) == []


def test_path_oblivious_trains_on_wrong_path():
    eip = make_eip(wrong_path_aware=False)
    eip.on_demand_access(10 * L, hit=True, on_path=False)
    eip.on_demand_access(11 * L, hit=True, on_path=False)
    eip.on_demand_access(12 * L, hit=True, on_path=False)
    eip.on_demand_access(50 * L, hit=False, on_path=False)
    assert eip.trained == 1


def test_self_entangle_rejected():
    eip = make_eip(entangling_distance=0)
    eip.on_demand_access(10 * L, hit=False, on_path=True)
    eip.on_demand_access(10 * L, hit=False, on_path=True)
    assert eip.trained == 0 or eip.table_occupancy == 0
