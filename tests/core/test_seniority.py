"""Seniority-FTQ."""

from repro.core.seniority import SeniorityFTQ


def test_insert_and_match_consumes():
    s = SeniorityFTQ(capacity=8)
    s.insert(0x1000)
    assert s.match(0x1000)
    assert not s.match(0x1000)  # consumed
    assert s.matched == 1


def test_match_unknown_line():
    s = SeniorityFTQ(capacity=8)
    assert not s.match(0x2000)


def test_fifo_eviction():
    s = SeniorityFTQ(capacity=2)
    s.insert(0x1000)
    s.insert(0x2000)
    s.insert(0x3000)
    assert s.evicted == 1
    assert not s.contains(0x1000)
    assert s.contains(0x2000)
    assert s.contains(0x3000)


def test_reinsert_refreshes_age():
    s = SeniorityFTQ(capacity=2)
    s.insert(0x1000)
    s.insert(0x2000)
    s.insert(0x1000)  # refresh
    s.insert(0x3000)  # evicts 0x2000, not 0x1000
    assert s.contains(0x1000)
    assert not s.contains(0x2000)


def test_duplicate_insert_not_double_counted():
    s = SeniorityFTQ(capacity=4)
    s.insert(0x1000)
    s.insert(0x1000)
    assert s.inserted == 1
    assert len(s) == 1


def test_clear():
    s = SeniorityFTQ(capacity=4)
    s.insert(0x1000)
    s.clear()
    assert len(s) == 0
    assert not s.contains(0x1000)


def test_capacity_invariant():
    s = SeniorityFTQ(capacity=3)
    for i in range(20):
        s.insert(i * 64)
    assert len(s) <= 3
