"""UDP's off-path confidence estimator."""

from repro.branch.tage import CONF_HIGH, CONF_LOW, CONF_MEDIUM
from repro.common.config import UDPConfig
from repro.core.confidence import ConfidenceEstimator


def make_estimator(threshold=8):
    return ConfidenceEstimator(UDPConfig(enabled=True, confidence_threshold=threshold))


def test_starts_on_path():
    assert not make_estimator().assumed_off_path


def test_high_confidence_never_flags():
    e = make_estimator()
    for _ in range(1000):
        e.on_confidence(CONF_HIGH)
    assert not e.assumed_off_path


def test_low_confidence_accumulates():
    e = make_estimator(threshold=4)
    for _ in range(2):
        e.on_confidence(CONF_LOW)
    assert not e.assumed_off_path  # counter == 4, not > 4
    e.on_confidence(CONF_LOW)
    assert e.assumed_off_path


def test_medium_counts_half_of_low():
    low = make_estimator(threshold=4)
    medium = make_estimator(threshold=4)
    for _ in range(3):
        low.on_confidence(CONF_LOW)
        medium.on_confidence(CONF_MEDIUM)
    assert low.assumed_off_path
    assert not medium.assumed_off_path


def test_btb_miss_taken_forces_off_path():
    e = make_estimator()
    e.on_btb_miss_predicted_taken()
    assert e.assumed_off_path


def test_reset_clears_everything():
    e = make_estimator(threshold=2)
    e.on_confidence(CONF_LOW)
    e.on_confidence(CONF_LOW)
    e.on_btb_miss_predicted_taken()
    assert e.assumed_off_path
    e.reset()
    assert not e.assumed_off_path
    assert e.counter == 0


def test_counters_recorded():
    e = make_estimator()
    e.on_confidence(CONF_LOW)
    e.on_confidence(CONF_HIGH)
    e.on_btb_miss_predicted_taken()
    assert e.counters[f"udp_conf_{CONF_LOW}"] == 1
    assert e.counters[f"udp_conf_{CONF_HIGH}"] == 1
    assert e.counters["udp_forced_off_path"] == 1
