"""Bloom filter: no false negatives, FPR bounds, sizing math."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bloom import (
    BITS_PER_ITEM_1PCT,
    BloomFilter,
    capacity_for_fpr,
    optimal_num_hashes,
)


def test_bits_per_item_constant():
    assert 9.5 < BITS_PER_ITEM_1PCT < 9.7


def test_paper_sizing_six_hashes():
    # 16k bits at its 1%-FPR capacity wants ~6-7 hash functions.
    bits = 16 * 1024
    capacity = capacity_for_fpr(bits, 0.01)
    assert optimal_num_hashes(bits, capacity) in (6, 7)


def test_paper_total_storage_budget():
    total_bits = 16 * 1024 + 1024 + 1024
    assert total_bits / 8 <= 8 * 1024  # within the 8KB budget


def test_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        BloomFilter(1000, 6)


def test_rejects_zero_hashes():
    with pytest.raises(ValueError):
        BloomFilter(1024, 0)


def test_insert_then_contains():
    bloom = BloomFilter(1024, 6)
    bloom.insert(0xABC0)
    assert bloom.contains(0xABC0)


def test_empty_filter_contains_nothing():
    bloom = BloomFilter(1024, 6)
    assert not any(bloom.contains(i * 64) for i in range(100))


def test_clear_resets():
    bloom = BloomFilter(1024, 6)
    bloom.insert(0x40)
    bloom.clear()
    assert not bloom.contains(0x40)
    assert bloom.inserted == 0


def test_full_flag():
    bloom = BloomFilter(1024, 6)
    assert not bloom.full
    for i in range(bloom.capacity):
        bloom.insert(i * 64)
    assert bloom.full


def test_false_positive_rate_near_design_point():
    bloom = BloomFilter(16 * 1024, 6, seed=5)
    for i in range(bloom.capacity):
        bloom.insert(i * 64)
    probes = 20_000
    false_hits = sum(
        bloom.contains((i + 1_000_000) * 64) for i in range(probes)
    )
    fpr = false_hits / probes
    assert fpr < 0.05  # design point ~1%; generous bound for hash variance


def test_fill_ratio_monotonic():
    bloom = BloomFilter(1024, 4)
    previous = 0.0
    for i in range(50):
        bloom.insert(i * 64)
        assert bloom.fill_ratio >= previous
        previous = bloom.fill_ratio


def test_estimated_fpr_increases_with_fill():
    bloom = BloomFilter(1024, 4)
    empty_fpr = bloom.estimated_fpr()
    for i in range(100):
        bloom.insert(i * 64)
    assert bloom.estimated_fpr() > empty_fpr


@given(st.sets(st.integers(min_value=0, max_value=2**40), max_size=200))
def test_no_false_negatives(keys):
    bloom = BloomFilter(4096, 6)
    for key in keys:
        bloom.insert(key)
    assert all(bloom.contains(key) for key in keys)


@given(
    st.sets(st.integers(min_value=0, max_value=2**30), min_size=1, max_size=100),
    st.integers(min_value=0, max_value=100),
)
def test_seed_isolation(keys, seed):
    """Filters with different seeds hold independent bit patterns but both
    preserve the no-false-negative guarantee."""
    a = BloomFilter(2048, 4, seed=seed)
    b = BloomFilter(2048, 4, seed=seed + 1)
    for key in keys:
        a.insert(key)
        b.insert(key)
    assert all(a.contains(k) and b.contains(k) for k in keys)
