"""Super-line coalescing buffer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.superline import (
    CoalescingBuffer,
    superline_base,
    superline_lines,
)

L = 64  # line bytes


def test_superline_base_alignment():
    assert superline_base(3 * L, 2) == 2 * L
    assert superline_base(2 * L, 2) == 2 * L
    assert superline_base(7 * L, 4) == 4 * L
    assert superline_base(5 * L, 1) == 5 * L


def test_superline_lines():
    assert superline_lines(4 * L, 4) == [4 * L, 5 * L, 6 * L, 7 * L]
    assert superline_lines(2 * L, 1) == [2 * L]


def test_no_groups_until_capacity_exceeded():
    buffer = CoalescingBuffer(capacity=4)
    for i in range(4):
        assert buffer.insert(i * 10 * L) == []
    assert len(buffer) == 4


def test_isolated_line_flushes_as_single():
    buffer = CoalescingBuffer(capacity=2)
    buffer.insert(100 * L)
    buffer.insert(200 * L)
    groups = buffer.insert(300 * L)
    assert groups == [(1, 100 * L)]


def test_aligned_pair_coalesces_to_2block():
    buffer = CoalescingBuffer(capacity=2)
    buffer.insert(4 * L)
    buffer.insert(5 * L)  # aligned pair [4,5]
    groups = buffer.insert(999 * L)  # evicts 4*L -> detects the pair
    assert groups == [(2, 4 * L)]
    assert len(buffer) == 1  # only the new line remains


def test_aligned_quad_coalesces_to_4block():
    buffer = CoalescingBuffer(capacity=4)
    for i in range(4, 8):
        buffer.insert(i * L)  # aligned quad [4..7]
    groups = buffer.insert(999 * L)
    assert groups == [(4, 4 * L)]


def test_unaligned_run_prefers_largest_fit():
    buffer = CoalescingBuffer(capacity=4)
    # Lines 3,4,5,6: line 3 can pair with 2 (absent); quad base of 3 is 0.
    for i in (3, 4, 5, 6):
        buffer.insert(i * L)
    groups = buffer.insert(999 * L)
    # Oldest (3) has no partner for 2-block [2,3]; flushed alone.
    assert groups == [(1, 3 * L)]


def test_duplicate_insert_refreshes():
    buffer = CoalescingBuffer(capacity=2)
    buffer.insert(10 * L)
    buffer.insert(20 * L)
    buffer.insert(10 * L)  # refresh: 20 is now oldest
    groups = buffer.insert(30 * L)
    assert groups == [(1, 20 * L)]


def test_superlines_disabled():
    buffer = CoalescingBuffer(capacity=2, enable_superlines=False)
    buffer.insert(4 * L)
    buffer.insert(5 * L)
    groups = buffer.insert(999 * L)
    assert groups == [(1, 4 * L)]


def test_drain_flushes_everything():
    buffer = CoalescingBuffer(capacity=8)
    for i in range(4, 8):
        buffer.insert(i * L)
    buffer.insert(100 * L)
    groups = buffer.drain()
    assert (4, 4 * L) in groups
    assert (1, 100 * L) in groups
    assert len(buffer) == 0


@given(
    st.lists(
        st.integers(min_value=0, max_value=500),
        min_size=0,
        max_size=300,
        unique=True,
    )
)
def test_conservation_of_lines(line_numbers):
    """Every inserted line eventually appears in exactly one emitted group."""
    buffer = CoalescingBuffer(capacity=8)
    emitted: list[tuple[int, int]] = []
    inserted: set[int] = set()
    for n in line_numbers:
        inserted.add(n * L)
        emitted.extend(buffer.insert(n * L))
    emitted.extend(buffer.drain())
    covered: set[int] = set()
    for size, base in emitted:
        for line in superline_lines(base, size):
            assert line not in covered, "line emitted twice"
            covered.add(line)
    assert covered == inserted
