"""UFTQ controllers: windows, direction rules, combined FSM, regression."""

from repro.common.config import UFTQConfig
from repro.core.uftq import (
    PAPER_REGRESSION,
    PHASE_ATR,
    PHASE_AUR,
    PHASE_HOLD,
    UFTQController,
    regression_depth,
)
from repro.frontend.ftq import FetchTargetQueue


def make_controller(mode, window=10, **overrides):
    config = UFTQConfig(mode=mode, window_prefetches=window, **overrides)
    ftq = FetchTargetQueue(config.initial_depth, 128)
    return UFTQController(config, ftq), ftq


def feed_utility(controller, useful_count, useless_count):
    for _ in range(useful_count):
        controller.on_utility_event(True)
    for _ in range(useless_count):
        controller.on_utility_event(False)


def feed_timeliness(controller, timely_count, untimely_count):
    for _ in range(timely_count):
        controller.on_timeliness_event(True)
    for _ in range(untimely_count):
        controller.on_timeliness_event(False)


def test_initial_depth():
    _, ftq = make_controller("aur")
    assert ftq.depth == 32


def test_no_adjustment_mid_window():
    controller, ftq = make_controller("aur", window=10)
    feed_utility(controller, 5, 0)
    assert ftq.depth == 32


def test_aur_extends_on_high_utility():
    controller, ftq = make_controller("aur", window=10)
    feed_utility(controller, 10, 0)  # utility 1.0 >= target
    assert ftq.depth == 32 + controller.config.step


def test_aur_shrinks_on_low_utility():
    controller, ftq = make_controller("aur", window=10)
    feed_utility(controller, 2, 8)  # utility 0.2 < target
    assert ftq.depth == 32 - controller.config.step


def test_atr_extends_on_low_timeliness():
    controller, ftq = make_controller("atr", window=10)
    feed_timeliness(controller, 2, 8)  # late prefetches -> run further ahead
    assert ftq.depth == 32 + controller.config.step


def test_atr_shrinks_on_high_timeliness():
    controller, ftq = make_controller("atr", window=10)
    feed_timeliness(controller, 10, 0)
    assert ftq.depth == 32 - controller.config.step


def test_depth_clamped_to_bounds():
    controller, ftq = make_controller("aur", window=10)
    for _ in range(100):
        feed_utility(controller, 0, 10)
    assert ftq.depth == controller.config.min_depth
    for _ in range(200):
        feed_utility(controller, 10, 0)
    assert ftq.depth == controller.config.max_depth


def test_off_mode_never_adjusts():
    controller, ftq = make_controller("off", window=10)
    feed_utility(controller, 10, 0)
    feed_timeliness(controller, 10, 0)
    assert ftq.depth == 32
    assert controller.adjustments == 0


def test_aur_ignores_timeliness_events():
    controller, ftq = make_controller("aur", window=10)
    feed_timeliness(controller, 10, 0)
    assert ftq.depth == 32


def test_combined_fsm_progresses_through_phases():
    controller, ftq = make_controller("atr-aur", window=10)
    assert controller.phase == PHASE_AUR
    # Consistently high utility drives the AUR phase to the max rail.
    for _ in range(20):
        feed_utility(controller, 10, 0)
        if controller.phase != PHASE_AUR:
            break
    assert controller.phase in (PHASE_ATR, PHASE_HOLD)
    assert controller.qd_aur is not None
    for _ in range(20):
        feed_timeliness(controller, 10, 0)
        if controller.phase not in (PHASE_ATR,):
            break
    assert controller.phase == PHASE_HOLD
    assert controller.qd_atr is not None
    assert controller.counters["uftq_regression_applied"] == 1


def test_combined_fsm_reenters_search_after_hold():
    controller, ftq = make_controller("atr-aur", window=10)
    for _ in range(60):
        feed_utility(controller, 10, 0)
        feed_timeliness(controller, 10, 0)
        if controller.counters["uftq_phase_aur"] >= 1:
            break
    assert controller.counters["uftq_phase_aur"] >= 1  # always-on adaptation


def test_regression_formula_paper_coefficients():
    # Hand-computed value at QD_AUR = QD_ATR = 32.
    value = regression_depth(32, 32, PAPER_REGRESSION)
    expected = (-0.34 * 32 + 0.64 * 32 + 0.008 * 1024 + 0.01 * 1024
                - 0.008 * 1024)
    assert abs(value - expected) < 1e-9


def test_regression_depth_monotone_in_atr_region():
    shallow = regression_depth(16, 16, PAPER_REGRESSION)
    deep = regression_depth(64, 64, PAPER_REGRESSION)
    assert deep > shallow


def test_combined_applies_clamped_regression():
    controller, ftq = make_controller("atr-aur", window=10)
    controller.qd_aur = 96
    controller.qd_atr = 96
    controller._apply_regression()
    assert controller.config.min_depth <= ftq.depth <= controller.config.max_depth
