"""UDP filter: gate decisions, Seniority training, outcome feedback."""

from repro.common.config import UDPConfig
from repro.core.udp import UDPFilter
from repro.frontend.fetch_block import FTQEntry

L = 64


def make_udp(**overrides):
    return UDPFilter(UDPConfig(enabled=True, **overrides))


def entry(start, assumed_off=False):
    return FTQEntry(seq=0, start=start, end=start + 32, on_path=True,
                    assumed_off_path=assumed_off)


def test_on_path_candidates_pass_unconditionally():
    udp = make_udp()
    assert udp.evaluate(4 * L, entry(4 * L)) == [4 * L]
    assert udp.counters["udp_pass_on_path"] == 1


def test_off_path_unknown_candidate_dropped():
    udp = make_udp()
    assert udp.evaluate(4 * L, entry(4 * L, assumed_off=True)) == []
    assert udp.counters["udp_drop_off_path"] == 1


def test_off_path_candidate_recorded_in_seniority():
    udp = make_udp()
    udp.evaluate(4 * L, entry(4 * L, assumed_off=True))
    assert udp.seniority.contains(4 * L)


def test_retirement_promotes_candidate():
    udp = make_udp(infinite_storage=True)
    udp.evaluate(4 * L, entry(4 * L, assumed_off=True))  # dropped, recorded
    udp.on_retire(4 * L + 8)  # an instruction in that line retires
    assert udp.counters["udp_learned_useful"] == 1
    # Next time the candidate is emitted.
    assert udp.evaluate(4 * L, entry(4 * L, assumed_off=True)) == [4 * L]
    assert udp.counters["udp_emit_off_path"] == 1


def test_retirement_of_unrelated_line_learns_nothing():
    udp = make_udp(infinite_storage=True)
    udp.evaluate(4 * L, entry(4 * L, assumed_off=True))
    udp.on_retire(9 * L)
    assert udp.counters["udp_learned_useful"] == 0


def test_seniority_disabled_uses_direct_learning_only():
    udp = make_udp(infinite_storage=True, use_seniority=False)
    udp.evaluate(4 * L, entry(4 * L, assumed_off=True))
    udp.on_retire(4 * L)  # ignored without seniority
    assert udp.counters["udp_learned_useful"] == 0
    udp.on_demand_hit_off_path_prefetch(4 * L)
    assert udp.counters["udp_learned_useful_direct"] == 1
    assert udp.evaluate(4 * L, entry(4 * L, assumed_off=True)) == [4 * L]


def test_prefetch_outcomes_feed_flush_policy():
    udp = make_udp()
    udp.useful_set.filters[1].inserted = udp.useful_set.filters[1].capacity
    for _ in range(300):
        udp.on_prefetch_outcome(useful=False)
    assert udp.counters["useful_set_flush_1"] >= 1


def test_path_estimator_shared():
    udp = make_udp()
    assert udp.path_estimator is udp.estimator
    udp.estimator.on_btb_miss_predicted_taken()
    assert udp.estimator.assumed_off_path
