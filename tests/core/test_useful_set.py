"""The UDP useful-set: granularities, flush policy, infinite mode."""

from repro.common.config import UDPConfig
from repro.core.useful_set import UsefulSet

L = 64


def make_set(**overrides):
    return UsefulSet(UDPConfig(enabled=True, **overrides))


def fill_through_coalescer(useful_set, lines):
    """Insert lines plus enough padding to force them out of the buffer."""
    for line in lines:
        useful_set.insert(line)
    for i in range(20):
        useful_set.insert((10_000 + 100 * i) * L)


def test_learned_line_queryable():
    s = make_set()
    fill_through_coalescer(s, [42 * L])
    assert s.contains(42 * L)
    assert 42 * L in s.query(42 * L)


def test_unknown_line_misses():
    s = make_set()
    assert s.query(7 * L) == []
    assert not s.contains(7 * L)


def test_superline_query_licenses_whole_block():
    s = make_set()
    fill_through_coalescer(s, [4 * L, 5 * L, 6 * L, 7 * L])
    lines = s.query(5 * L)
    # The 4-block [4..7] was coalesced: a query on any member returns all.
    assert set(lines) >= {4 * L, 5 * L, 6 * L, 7 * L}
    # The demanded line is returned first.
    assert lines[0] == 5 * L


def test_pair_query():
    s = make_set()
    fill_through_coalescer(s, [8 * L, 9 * L])
    assert set(s.query(8 * L)) >= {8 * L, 9 * L}


def test_superlines_disabled_stores_singles():
    s = make_set(use_superlines=False)
    fill_through_coalescer(s, [4 * L, 5 * L, 6 * L, 7 * L])
    assert s.filters[4].inserted == 0
    assert s.filters[2].inserted == 0
    assert s.query(4 * L)


def test_infinite_storage_exact():
    s = make_set(infinite_storage=True)
    s.insert(3 * L)  # no coalescing delay in infinite mode
    assert s.query(3 * L) == [3 * L]
    assert s.query(4 * L) == []


def test_flush_policy_requires_full_and_unuseful():
    s = make_set()
    fill_through_coalescer(s, [i * 1000 * L for i in range(5)])
    inserted_before = s.filters[1].inserted
    # Useful outcomes: no flush even over many windows.
    for _ in range(600):
        s.on_prefetch_outcome(useful=True)
    assert s.filters[1].inserted == inserted_before


def test_flush_clears_full_filter_on_unuseful_window():
    s = make_set()
    bloom = s.filters[1]
    bloom.inserted = bloom.capacity  # force "full"
    bloom.insert(5 * L)
    for _ in range(300):
        s.on_prefetch_outcome(useful=False)
    assert bloom.inserted == 0
    assert not bloom.contains(5 * L)


def test_partial_filters_survive_flush():
    s = make_set()
    s.filters[1].inserted = s.filters[1].capacity  # only the 1-filter is full
    s.filters[2].insert(8 * L)
    for _ in range(300):
        s.on_prefetch_outcome(useful=False)
    assert s.filters[2].contains(8 * L)  # not full, not flushed


def test_storage_budget():
    s = make_set()
    assert s.storage_bits == 16 * 1024 + 1024 + 1024
    assert s.storage_bits / 8 <= 8 * 1024
