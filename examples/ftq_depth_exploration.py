#!/usr/bin/env python3
"""Reproduce the paper's Section III analysis for one workload: sweep the
FTQ depth and report IPC, timeliness, on-path ratio, utility, and average
occupancy at each depth (Figures 3, 4, 5, 6, 8 for a single application).

Run:
    python examples/ftq_depth_exploration.py [workload] [instructions]
"""

import sys

from repro import baseline_config, sweep_ftq_depths

DEPTHS = [8, 16, 24, 32, 48, 64, 96]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "verilator"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    print(f"FTQ depth sweep: {workload}, {instructions} instructions/run\n")
    results = sweep_ftq_depths(
        workload, baseline_config(instructions), DEPTHS
    )
    base_ipc = results[32].ipc

    print(f"{'depth':>5s} {'IPC':>7s} {'vs 32':>7s} {'timely':>7s} "
          f"{'on-path':>8s} {'utility':>8s} {'occupancy':>10s}")
    for depth in DEPTHS:
        r = results[depth]
        print(
            f"{depth:5d} {r.ipc:7.3f} {(r.ipc / base_ipc - 1) * 100:+6.1f}% "
            f"{r.timeliness:7.2f} {r.on_path_ratio:8.2f} {r.utility:8.2f} "
            f"{r.avg_ftq_occupancy:10.1f}"
        )

    best = max(DEPTHS, key=lambda d: results[d].ipc)
    print(f"\noptimal FTQ depth for {workload}: {best} "
          f"({(results[best].ipc / base_ipc - 1) * 100:+.1f}% over depth 32)")
    print("Compare with the paper's Table III optima "
          "(mysql 22 ... verilator 84, xgboost 12).")


if __name__ == "__main__":
    main()
