#!/usr/bin/env python3
"""Section V-C's efficiency claim, measured: UDP reduces emitted prefetches
and off-chip traffic at equal (or better) performance.

Prints per-workload energy/traffic breakdowns for the FDIP baseline and
UDP, using the first-order energy model in ``repro.sim.energy``.
"""

from repro import baseline_config, run_workload, udp_config
from repro.sim.energy import efficiency_comparison, energy_report

WORKLOADS = ["xgboost", "gcc", "mongodb"]
INSTRUCTIONS = 20_000


def main() -> None:
    for workload in WORKLOADS:
        base = run_workload(workload, baseline_config(INSTRUCTIONS), "baseline")
        udp = run_workload(workload, udp_config(INSTRUCTIONS), "udp")
        base_report = energy_report(base)
        udp_report = energy_report(udp)
        deltas = efficiency_comparison(base, udp)

        print(f"\n=== {workload} ===")
        print(f"baseline: {base_report.pj_per_instruction:8.1f} pJ/instr, "
              f"{base_report.offchip_bytes_per_kinstr:8.0f} B/kinstr off-chip, "
              f"{base['prefetches_emitted']} prefetches")
        print(f"udp:      {udp_report.pj_per_instruction:8.1f} pJ/instr, "
              f"{udp_report.offchip_bytes_per_kinstr:8.0f} B/kinstr off-chip, "
              f"{udp['prefetches_emitted']} prefetches")
        print(f"deltas:   prefetches {deltas['prefetches_emitted_pct']:+.1f}%, "
              f"off-chip {deltas['offchip_traffic_pct']:+.1f}%, "
              f"energy/instr {deltas['energy_per_instruction_pct']:+.1f}%, "
              f"IPC {deltas['ipc_pct']:+.1f}%")
        top = sorted(udp_report.per_component_pj.items(),
                     key=lambda kv: -kv[1])[:3]
        print("largest UDP energy components: "
              + ", ".join(f"{k} {v/1e6:.2f}µJ" for k, v in top))


if __name__ == "__main__":
    main()
