#!/usr/bin/env python3
"""Fig 13 in miniature: compare UDP against its ISO-storage comparators on
a chosen set of workloads.

Techniques (all over the fixed-32-FTQ FDIP baseline):
  * UDP (8KB Bloom-filter useful-set)
  * Infinite-storage UDP (exact, unbounded useful-set)
  * 40 KiB L1I (the 8KB budget spent on cache instead)
  * EIP-8KB (entangled instruction prefetcher layered on FDIP)

Run:
    python examples/udp_vs_comparators.py [workload,workload,...] [instructions]
"""

import sys

from repro import (
    baseline_config,
    bigger_icache_config,
    eip_config,
    geomean,
    infinite_storage_config,
    run_workload,
    udp_config,
)


def main() -> None:
    workloads = (
        sys.argv[1].split(",") if len(sys.argv) > 1 else ["xgboost", "mongodb", "gcc"]
    )
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    techniques = {
        "udp": udp_config(instructions),
        "infinite": infinite_storage_config(instructions),
        "icache-40k": bigger_icache_config(instructions),
        "eip-8k": eip_config(instructions),
    }

    ratios: dict[str, list[float]] = {name: [] for name in techniques}
    print(f"{'workload':10s} " + " ".join(f"{n:>11s}" for n in techniques))
    for workload in workloads:
        base = run_workload(workload, baseline_config(instructions), "baseline")
        cells = []
        for name, config in techniques.items():
            result = run_workload(workload, config, name)
            ratio = result.ipc / base.ipc
            ratios[name].append(ratio)
            cells.append(f"{(ratio - 1) * 100:+10.1f}%")
        print(f"{workload:10s} " + " ".join(cells))

    print(f"{'geomean':10s} " + " ".join(
        f"{(geomean(v) - 1) * 100:+10.1f}%" for v in ratios.values()
    ))
    print("\nPaper reference (Fig 13): UDP up to +16.1% (xgboost), +3.6% average;")
    print("40K icache ~= noise; EIP-8KB substantially below UDP.")


if __name__ == "__main__":
    main()
