#!/usr/bin/env python3
"""Watch UFTQ adapt the FTQ depth at runtime (Section IV-A).

Runs the three UFTQ controllers on two workloads with opposite optimal
depths (verilator wants deep, mysql is content shallow) and reports the
final adapted depth, the controller's phase trajectory, and IPC versus the
fixed-32 baseline and the exhaustive-search OPT.
"""

from repro import (
    baseline_config,
    optimal_ftq_depth,
    run_workload,
    uftq_config,
)

WORKLOADS = ["verilator", "mysql"]
INSTRUCTIONS = 20_000
SWEEP_DEPTHS = [8, 16, 32, 48, 64, 96]


def main() -> None:
    for workload in WORKLOADS:
        base = run_workload(workload, baseline_config(INSTRUCTIONS), "baseline")
        best_depth, sweep = optimal_ftq_depth(
            workload, baseline_config(INSTRUCTIONS), SWEEP_DEPTHS
        )
        opt = sweep[best_depth]
        print(f"\n=== {workload} ===")
        print(f"baseline (FTQ=32): IPC {base.ipc:.3f}")
        print(f"OPT (FTQ={best_depth}):     IPC {opt.ipc:.3f} "
              f"({(opt.ipc / base.ipc - 1) * 100:+.1f}%)")
        for mode in ("aur", "atr", "atr-aur"):
            result = run_workload(
                workload, uftq_config(mode, INSTRUCTIONS), f"uftq-{mode}"
            )
            print(
                f"UFTQ-{mode.upper():8s} IPC {result.ipc:.3f} "
                f"({(result.ipc / base.ipc - 1) * 100:+.1f}%), "
                f"final depth {result.final_ftq_depth}, "
                f"adjustments {result['uftq_adjustments']}"
            )


if __name__ == "__main__":
    main()
