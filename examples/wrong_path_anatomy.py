#!/usr/bin/env python3
"""Dissect wrong-path behaviour: where resteers come from and what the
wrong path prefetches (the paper's Section III-E/F analysis).

Prints, per workload: resteer causes (conditional mispredicts, BTB misses,
indirect/RAS mispredicts), decode vs execute resolution, the on/off-path
prefetch split, and how useful the off-path prefetches turned out to be —
the data behind the paper's three off-path-usefulness categories.
"""

from repro import baseline_config, run_workload

WORKLOADS = ["verilator", "mysql", "mongodb", "xgboost"]
INSTRUCTIONS = 20_000


def main() -> None:
    for workload in WORKLOADS:
        r = run_workload(workload, baseline_config(INSTRUCTIONS), "baseline")
        total_useful = max(r["prefetch_useful"], 1)
        total_useless = r["prefetch_useless"]
        off_useful = r["prefetch_useful_off_path"]
        off_useless = r["prefetch_useless_off_path"]
        off_total = max(off_useful + off_useless, 1)
        print(f"\n=== {workload} (IPC {r.ipc:.3f}) ===")
        print(f"resteers/kinstr: {r.resteers_per_kilo_instruction:.1f}  "
              f"(cond {r['resteer_cond_mispredict']}, "
              f"btb {r['resteer_btb_miss']}, "
              f"indirect {r['resteer_indirect_mispredict']}, "
              f"ras {r['resteer_ras_mispredict']})")
        print(f"resolution: {r['resteer_at_decode']} at decode (PFC), "
              f"{r['resteer_at_execute']} at execute")
        print(f"prefetches: {r['prefetches_emitted']} emitted, "
              f"{r.on_path_ratio:.0%} on-path")
        print(f"off-path outcome: {off_useful}/{off_total} useful "
              f"({off_useful / off_total:.0%}) — "
              f"overall utility {r.utility:.2f}")
        print(f"useful split: {r['prefetch_useful_on_path']} on-path, "
              f"{off_useful} off-path of {total_useful + total_useless} tracked")


if __name__ == "__main__":
    main()
