#!/usr/bin/env python3
"""Quickstart: simulate one datacenter workload under FDIP, UDP, and a
perfect icache, and print the headline metrics.

Run:
    python examples/quickstart.py [workload] [instructions]

Defaults: workload=xgboost (the paper's headline app), 20000 instructions.
"""

import sys

from repro import (
    baseline_config,
    perfect_icache_config,
    run_workload,
    udp_config,
)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "xgboost"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    print(f"workload={workload}, {instructions} instructions per run\n")

    baseline = run_workload(
        workload, baseline_config(instructions), config_name="baseline"
    )
    udp = run_workload(workload, udp_config(instructions), config_name="udp")
    perfect = run_workload(
        workload, perfect_icache_config(instructions), config_name="perfect-icache"
    )

    print(f"{'config':16s} {'IPC':>7s} {'MPKI':>7s} {'utility':>8s} "
          f"{'timely':>7s} {'on-path':>8s}")
    for result in (baseline, udp, perfect):
        print(
            f"{result.config_name:16s} {result.ipc:7.3f} {result.icache_mpki:7.2f} "
            f"{result.utility:8.2f} {result.timeliness:7.2f} "
            f"{result.on_path_ratio:8.2f}"
        )

    print()
    print(f"UDP speedup over baseline:        {(udp.ipc / baseline.ipc - 1) * 100:+.1f}%")
    print(f"perfect-icache headroom:          {(perfect.ipc / baseline.ipc - 1) * 100:+.1f}%")
    udp_drops = udp["udp_drop_off_path"]
    udp_emits = udp["udp_emit_off_path"]
    print(f"UDP gated off-path candidates:    {udp_drops} dropped, {udp_emits} emitted")


if __name__ == "__main__":
    main()
