#!/usr/bin/env python3
"""Drive the parallel experiment engine directly: build a (workload x FTQ
depth) RunSpec grid, fan it out over REPRO_JOBS worker processes, and watch
the per-run progress and cache counters.

Run it twice to see the on-disk result cache in action — the second
invocation finishes with zero simulator invocations (all cache hits).

Run:
    python examples/parallel_sweep.py [workloads] [instructions]
    python examples/parallel_sweep.py mysql,xgboost 10000
"""

import sys
import time

from repro import BatchStats, baseline_config, run_batch, spec_for

DEPTHS = [8, 16, 32, 64]


def main() -> None:
    workloads = (sys.argv[1] if len(sys.argv) > 1 else "mysql,xgboost").split(",")
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000

    base = baseline_config(instructions)
    specs = [
        spec_for(workload, base.with_ftq_depth(depth), label=f"ftq{depth}")
        for workload in workloads
        for depth in DEPTHS
    ]

    stats = BatchStats()

    def progress(event):
        stats(event)
        source = "cache" if event.cached else f"{event.seconds:.2f}s"
        print(f"  [{event.completed:2d}/{event.total}] "
              f"{event.spec.workload}/{event.spec.label} ({source})")

    print(f"batch of {len(specs)} runs "
          f"({len(workloads)} workloads x {len(DEPTHS)} depths, "
          f"{instructions} instructions/run)")
    started = time.perf_counter()
    results = run_batch(specs, progress=progress)
    wall = time.perf_counter() - started

    print(f"\n{stats.summary()}; batch wall-clock {wall:.2f}s")

    by_key = {(s.workload, s.label): r for s, r in zip(specs, results)}
    print(f"\n{'workload':>12s} " + " ".join(f"ftq{d:>4d}" for d in DEPTHS))
    for workload in workloads:
        ipcs = [by_key[(workload, f'ftq{d}')].ipc for d in DEPTHS]
        print(f"{workload:>12s} " + " ".join(f"{ipc:7.3f}" for ipc in ipcs))
    print("\n(IPC per FTQ depth; rerun this script for an all-cache-hits batch.)")


if __name__ == "__main__":
    main()
