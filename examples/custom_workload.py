#!/usr/bin/env python3
"""Build a custom synthetic program with the ProgramBuilder API and run it.

Demonstrates the workload substrate directly: hand-written control flow
(a dispatcher loop, a hot function with a loop, a cold function behind an
unpredictable branch), then a simulation comparing FDIP with and without
UDP on it.
"""

from repro import SimConfig, UDPConfig, run_program
from repro.workloads import (
    BiasedBehavior,
    LoopBehavior,
    PatternBehavior,
    ProgramBuilder,
)


def build_program():
    b = ProgramBuilder(base=0x10_000)
    dispatch = b.label("dispatch")
    hot = b.label("hot")
    cold = b.label("cold")
    skip_cold = b.label("skip_cold")

    # Dispatcher: call the hot function, sometimes the cold one, loop.
    b.place(dispatch)
    b.set_entry()
    b.call(4, target=hot)
    # ~15% of iterations visit the cold function (data-dependent branch).
    b.cond_branch(3, target=skip_cold, behavior=BiasedBehavior(seed=7, p_taken=0.85))
    b.call(2, target=cold)
    b.place(skip_cold)
    b.block(2, jump_to=dispatch)

    # Hot function: a counted inner loop plus a patterned diamond.
    b.place(hot)
    loop_head = b.label("loop")
    b.place(loop_head)
    b.block(6)
    b.cond_branch(2, target=loop_head, behavior=LoopBehavior(trip_count=8))
    else_side = b.label("else")
    merge = b.label("merge")
    b.cond_branch(4, target=else_side,
                  behavior=PatternBehavior(seed=3, pattern=0b1101, length=4))
    b.block(5, jump_to=merge)
    b.place(else_side)
    b.block(5)
    b.place(merge)
    b.ret(3)

    # Cold function: a big straight-line body (large footprint).
    b.place(cold)
    for _ in range(60):
        b.block(8)
    b.ret(2)

    return b.finish()


def main() -> None:
    program = build_program()
    print(f"custom program: {program.num_blocks} blocks, "
          f"{program.footprint_bytes // 1024} KiB, {program.num_branches} branches\n")

    base_config = SimConfig(max_instructions=15_000, functional_warmup_blocks=2_000)
    udp_config = base_config.replace(udp=UDPConfig(enabled=True))

    base = run_program(program, base_config, "custom", "baseline")
    udp = run_program(program, udp_config, "custom", "udp")

    for result in (base, udp):
        print(f"{result.config_name:10s} IPC={result.ipc:.3f} "
              f"MPKI={result.icache_mpki:.2f} utility={result.utility:.2f} "
              f"resteers/ki={result.resteers_per_kilo_instruction:.1f}")
    print(f"\nUDP speedup: {(udp.ipc / base.ipc - 1) * 100:+.1f}%")


if __name__ == "__main__":
    main()
