#!/usr/bin/env python3
"""UFTQ's always-on adaptation across program phase changes (Section IV-A).

Builds a phase-shifting variant of a workload (its conditionals flip
between the original predictable behaviour and coin flips every
``PHASE_LENGTH`` occurrences) and compares the fixed-32 baseline against
UFTQ-ATR-AUR, which the paper keeps always-on precisely for this case.
"""

from repro import SimConfig, UFTQConfig, run_program
from repro.workloads.phases import make_phased_program, phase_summary
from repro.workloads.profiles import get_profile

WORKLOAD = "gcc"
PHASE_LENGTH = 200
INSTRUCTIONS = 20_000


def main() -> None:
    profile = get_profile(WORKLOAD)
    program = make_phased_program(
        profile, seed=1, phase_length=PHASE_LENGTH, affected_fraction=0.5
    )
    summary = phase_summary(program)
    print(f"{WORKLOAD} (phased): {summary['phased_conditionals']} conditionals "
          f"flip behaviour every {PHASE_LENGTH} occurrences, "
          f"{summary['plain_conditionals']} stay fixed\n")

    base_config = SimConfig(max_instructions=INSTRUCTIONS)
    uftq_config = base_config.replace(uftq=UFTQConfig(mode="atr-aur"))

    base = run_program(program, base_config, WORKLOAD, "baseline")
    uftq = run_program(program, uftq_config, WORKLOAD, "uftq-atr-aur")

    for result in (base, uftq):
        print(f"{result.config_name:14s} IPC={result.ipc:.3f} "
              f"MPKI={result.icache_mpki:.2f} "
              f"final_depth={result.final_ftq_depth} "
              f"adjustments={result['uftq_adjustments']}")
    print(f"\nUFTQ speedup on the phased workload: "
          f"{(uftq.ipc / base.ipc - 1) * 100:+.1f}%")
    print("The controller's adjustment count shows it kept re-searching as "
          "phases flipped (always-on, per the paper).")


if __name__ == "__main__":
    main()
